"""Thread-escape and synchronization-usage classification.

Built on the AmberFlow :class:`~repro.analyze.flow.model.FlowModel`,
which records classes, field types, and every ``New``/``Invoke``/
``Fork``/``Attach`` site.  AmberElide adds the one thing flow does not
track — *which references carry instances across a thread boundary* —
with a dedicated transfer pass over the same ASTs, then computes a
three-point confinement lattice per class:

``confined``
    Every instance is only reachable from the thread that created it.
    Computed as non-membership in the *shared* closure: the seeds are
    fork-target classes (the forking parent and the forked thread both
    hold the instance), and sharedness propagates along instance-
    carrying edges — object-valued fields, container element types,
    ``Attach`` pairs, constructor arguments, invocation arguments,
    fork arguments, and method returns of the carrying class.  A
    creation or invocation alone does *not* share: a scratch object
    built inside a forked method body stays confined to that thread
    even when the enclosing class is shared.

``immutable``
    No field writes outside ``__init__`` — the flow model's
    ``read_only`` per-class fact, tightened by the transfer pass's
    *foreign-write* check (``other.field = x`` from another class's
    code, which the flow model's self-write accounting cannot see).

``elidable lock``
    A ``Lock``/``SpinLock``/``Monitor`` creation site whose instance
    never crosses a fork, is never returned or stored into unknown
    containers, and flows only into confined or immutable classes —
    i.e. the lock is only ever reachable from one thread, so its
    acquire/release pairs cannot contend.

All facts are conservative: anything the pass cannot prove stays
unclassified, and the dynamic soundness audit (``repro elide
--verify``) checks the claims against real runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analyze.flow.model import FlowModel, scan_sources

#: The sim sync classes whose sites the lock analysis classifies.
LOCK_CLASSES = ("Lock", "Monitor", "SpinLock")

#: Syscall call heads the transfer pass understands.
_NEW, _INVOKE, _FAST, _FORK, _ATTACH = (
    "New", "Invoke", "FastInvoke", "Fork", "Attach")


@dataclass(frozen=True)
class LockSite:
    """One lock creation site and its elidability verdict."""

    path: str
    line: int
    #: Runtime creation context: enclosing class name, or ``<main>``
    #: for module-level functions (the program's main thread).
    owner: str
    #: Source name the lock is bound to (``lock``, ``self.mutex``).
    var: str
    cls: str
    elidable: bool
    reason: str


@dataclass
class ElideModel:
    """The classification result consumed by artifact + diagnostics."""

    flow: FlowModel
    confined: List[str] = field(default_factory=list)
    immutable: List[str] = field(default_factory=list)
    #: class -> why it is shared (diagnostics evidence).
    shared: Dict[str, str] = field(default_factory=dict)
    lock_sites: List[LockSite] = field(default_factory=list)

    @property
    def skip_classes(self) -> List[str]:
        return sorted(set(self.confined) | set(self.immutable))


# ---------------------------------------------------------------------------
# Transfer pass
# ---------------------------------------------------------------------------


@dataclass
class _Transfer:
    """Per-program facts the flow model lacks."""

    #: Instance-carrying edges: container class -> contained classes.
    edges: Dict[str, Set[str]] = field(default_factory=dict)
    #: Classes whose instances reach an unresolvable context.
    leaked: Dict[str, str] = field(default_factory=dict)
    #: Classes written through a non-``self`` receiver.
    foreign_written: Set[str] = field(default_factory=set)
    #: Raw lock creations: (path, line, owner, var, cls, flows, unsafe).
    locks: List[Tuple[str, int, str, str, str,
                      Set[str], Optional[str]]] = field(
        default_factory=list)

    def edge(self, container: str, contained: Optional[str]) -> None:
        if contained:
            self.edges.setdefault(container, set()).add(contained)


class _FnScan:
    """Flow-insensitive scan of one function body."""

    def __init__(self, transfer: _Transfer, model: FlowModel,
                 path: str, cls: str) -> None:
        self.t = transfer
        self.model = model
        self.path = path
        self.cls = cls                  # "" for module-level functions
        self.owner = cls or "<main>"
        self.env: Dict[str, str] = {}   # local var -> class name
        #: lock key ("lock", "self.mutex") -> index into transfer.locks
        self.lock_of: Dict[str, int] = {}
        #: id() of lock-creating Call nodes bound to a tracked name —
        #: any other lock creation is untrackable and must be recorded
        #: as an unsafe site (the all-sites pair rule depends on it).
        self.bound_lock_calls: Set[int] = set()

    # -- expression classification --------------------------------------

    def _cls_of(self, node: Optional[ast.expr]) -> Optional[str]:
        if node is None:
            return None
        if isinstance(node, ast.Name):
            if node.id == "self":
                return self.cls or None
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == "self" and self.cls:
            cm = self.model.classes.get(self.cls)
            if cm is not None:
                return cm.field_classes.get(node.attr) \
                    or cm.field_elems.get(node.attr)
            return None
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and \
                node.func.id in self.model.classes:
            return node.func.id
        return None

    @staticmethod
    def _key(node: ast.expr) -> Optional[str]:
        """Source key for lock tracking: plain name or self attribute."""
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == "self":
            return f"self.{node.attr}"
        return None

    @staticmethod
    def _syscall(node: ast.expr) -> Optional[ast.Call]:
        """Unwrap ``yield Call(...)`` / plain ``Call(...)``."""
        if isinstance(node, (ast.Yield, ast.Await)) and \
                node.value is not None:
            node = node.value
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name):
            return node
        return None

    @staticmethod
    def _head(call: ast.Call) -> str:
        assert isinstance(call.func, ast.Name)
        return call.func.id

    # -- passes ---------------------------------------------------------

    def run(self, fn: ast.AST) -> None:
        body = list(ast.iter_child_nodes(fn))
        nodes = [n for stmt in body for n in ast.walk(stmt)
                 if not isinstance(stmt, (ast.FunctionDef,
                                          ast.AsyncFunctionDef,
                                          ast.ClassDef))]
        self._bind(nodes)
        self._collect(nodes)

    def _bind(self, nodes: Sequence[ast.AST]) -> None:
        """Pass 1: variable -> class bindings and lock creations."""
        for node in nodes:
            if not isinstance(node, ast.Assign) or \
                    len(node.targets) != 1:
                continue
            target = node.targets[0]
            key = self._key(target)
            call = self._syscall(node.value)
            cls: Optional[str] = None
            if call is not None and self._head(call) == _NEW and \
                    call.args and isinstance(call.args[0], ast.Name):
                cls = call.args[0].id
            elif isinstance(node.value, ast.Call) and \
                    isinstance(node.value.func, ast.Name):
                name = node.value.func.id
                if name in self.model.classes or name in LOCK_CLASSES:
                    cls = name
            if cls is None:
                continue
            if key is None:
                continue
            if cls in LOCK_CLASSES:
                lock_call = call if call is not None else (
                    node.value if isinstance(node.value, ast.Call)
                    else None)
                if lock_call is not None:
                    self.bound_lock_calls.add(id(lock_call))
                flows: Set[str] = set()
                unsafe: Optional[str] = None
                if key.startswith("self."):
                    # A lock stored in a field is reachable through
                    # every path that reaches the enclosing class.
                    flows.add(self.cls)
                self.lock_of[key] = len(self.t.locks)
                self.t.locks.append(
                    (self.path, node.lineno, self.owner, key, cls,
                     flows, unsafe))
            elif isinstance(target, ast.Name):
                self.env[key] = cls

    def _lock_flow(self, key: str, dest: Optional[str],
                   what: str) -> None:
        entry = self.t.locks[self.lock_of[key]]
        if dest is None:
            self.t.locks[self.lock_of[key]] = entry[:6] + (what,)
        else:
            entry[5].add(dest)

    def _args_of(self, call: ast.Call, skip: int) -> List[ast.expr]:
        return list(call.args[skip:]) + \
            [kw.value for kw in call.keywords if kw.value is not None]

    #: Container mutators: ``xs.append(obj)`` stores ``obj`` somewhere
    #: the per-variable tracking cannot follow, so it leaks.
    _CONTAINER_STORES = frozenset(
        {"append", "add", "extend", "insert", "appendleft", "put"})

    def _collect(self, nodes: Sequence[ast.AST]) -> None:
        """Pass 2: carrying edges, leaks, lock flows."""
        for node in nodes:
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name):
                self._call(node)
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in self._CONTAINER_STORES:
                self._container_store(node)
            elif isinstance(node, ast.Return) and \
                    node.value is not None:
                self._return(node.value)
            elif isinstance(node, ast.Assign) and \
                    len(node.targets) == 1:
                self._store(node.targets[0], node.value)

    def _container_store(self, call: ast.Call) -> None:
        for arg in self._args_of(call, 0):
            key = self._key(arg)
            if key is not None and key in self.lock_of:
                self._lock_flow(key, None, "stored into a container")
                continue
            cls = self._cls_of(arg)
            if cls is not None:
                self.t.leaked.setdefault(
                    cls, f"stored into a container at "
                         f"{self.path}:{call.lineno}")

    def _unbound_lock(self, call: ast.Call, cls: str) -> None:
        if id(call) not in self.bound_lock_calls:
            self.t.locks.append(
                (self.path, call.lineno, self.owner, "<unbound>", cls,
                 set(), "creation not bound to a trackable name"))

    def _call(self, call: ast.Call) -> None:
        head = self._head(call)
        if head in LOCK_CLASSES:
            self._unbound_lock(call, head)
            return
        if head == _NEW:
            if not call.args or not isinstance(call.args[0], ast.Name):
                return
            dest: Optional[str] = call.args[0].id
            if dest in LOCK_CLASSES:
                self._unbound_lock(call, dest)
            args = self._args_of(call, 1)
        elif head in (_INVOKE, _FAST):
            if not call.args:
                return
            dest = self._cls_of(call.args[0])
            args = self._args_of(call, 2)
        elif head == _FORK:
            if not call.args:
                return
            dest = self._cls_of(call.args[0])
            args = self._args_of(call, 2)
        elif head == _ATTACH:
            if len(call.args) >= 2:
                a = self._cls_of(call.args[0])
                b = self._cls_of(call.args[1])
                if a and b:
                    self.t.edge(a, b)
                    self.t.edge(b, a)
            return
        else:
            # Unknown helper: anything object-valued passed to it is
            # beyond the analysis — leak it, and kill lock proofs.
            for arg in call.args:
                key = self._key(arg)
                if key is not None and key in self.lock_of:
                    self._lock_flow(key, None,
                                    f"passed to helper {head}()")
                    continue
                cls = self._cls_of(arg)
                if cls is not None:
                    self.t.leaked.setdefault(
                        cls, f"passed to helper {head}() at "
                             f"{self.path}:{call.lineno}")
            return
        for arg in args:
            key = self._key(arg)
            if key is not None and key in self.lock_of:
                if head == _FORK:
                    self._lock_flow(key, None, "crosses a Fork")
                elif dest is None:
                    self._lock_flow(key, None,
                                    "flows to unresolved receiver")
                else:
                    self._lock_flow(key, dest, "")
                continue
            cls = self._cls_of(arg)
            if cls is None:
                continue
            if dest is None:
                self.t.leaked.setdefault(
                    cls, f"argument to unresolved {head} at "
                         f"{self.path}:{call.lineno}")
            else:
                self.t.edge(dest, cls)

    def _return(self, value: ast.expr) -> None:
        key = self._key(value)
        if key is not None and key in self.lock_of:
            self._lock_flow(key, None, "returned from its creator")
            return
        cls = self._cls_of(value)
        if cls is not None:
            if self.cls:
                self.t.edge(self.cls, cls)
            # Module-level returns stay with the calling thread.

    def _store(self, target: ast.expr, value: ast.expr) -> None:
        vkey = self._key(value)
        vcls = self._cls_of(value)
        if isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name) and base.id == "self":
                if self.cls and vcls is not None:
                    self.t.edge(self.cls, vcls)
                if vkey is not None and vkey in self.lock_of:
                    self._lock_flow(vkey, self.cls or None,
                                    "stored outside a class" if
                                    not self.cls else "")
                return
            owner = self._cls_of(base)
            if owner is not None and owner != self.cls:
                self.t.foreign_written.add(owner)
            if vkey is not None and vkey in self.lock_of:
                self._lock_flow(vkey, owner, "stored into foreign "
                                "object" if owner is None else "")
            elif vcls is not None:
                if owner is not None:
                    self.t.edge(owner, vcls)
                else:
                    self.t.leaked.setdefault(
                        vcls, "stored through unresolved attribute")
        elif isinstance(target, ast.Subscript):
            if vkey is not None and vkey in self.lock_of:
                self._lock_flow(vkey, None, "stored into a container")
            elif vcls is not None:
                self.t.leaked.setdefault(
                    vcls, "stored into a container")


def _scan_transfer(model: FlowModel,
                   sources: Sequence[Tuple[str, str]]) -> _Transfer:
    transfer = _Transfer()
    for path, text in sources:
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError:
            continue
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                cls = _enclosing_class(tree, node)
                _FnScan(transfer, model, path, cls).run(node)
    return transfer


def _enclosing_class(tree: ast.Module, fn: ast.AST) -> str:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            if any(child is fn for child in node.body):
                return node.name
    return ""


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------


def classify(model: FlowModel,
             sources: Sequence[Tuple[str, str]]) -> ElideModel:
    """Run the confinement/immutability/lock classification."""
    transfer = _scan_transfer(model, sources)

    # Carrying edges from the flow model itself.
    edges: Dict[str, Set[str]] = {
        cls: set(values) for cls, values in transfer.edges.items()}
    for cm in model.classes.values():
        row = edges.setdefault(cm.name, set())
        row.update(v for v in cm.field_classes.values()
                   if v in model.classes)
        row.update(v for v in cm.field_elems.values()
                   if v in model.classes)
    for a, b in model.attach_pairs:
        if a in model.classes and b in model.classes:
            edges.setdefault(a, set()).add(b)
            edges.setdefault(b, set()).add(a)

    # Sharedness closure from the fork-target + leak seeds.
    shared: Dict[str, str] = {}
    worklist: List[str] = []
    for cls in sorted(model.fork_target_classes()):
        shared[cls] = "instances are forked (parent and child both " \
                      "hold the reference)"
        worklist.append(cls)
    for cls, why in sorted(transfer.leaked.items()):
        if cls not in shared:
            shared[cls] = why
            worklist.append(cls)
    while worklist:
        cls = worklist.pop()
        for nxt in sorted(edges.get(cls, ())):
            if nxt not in shared:
                shared[nxt] = f"reachable from shared class {cls}"
                worklist.append(nxt)

    instantiated = sorted(model.instantiated_classes()
                          & set(model.classes))
    confined = [cls for cls in instantiated if cls not in shared]
    immutable = [
        cls for cls in instantiated
        if model.classes[cls].read_only
        and cls not in transfer.foreign_written]

    # A lock is elidable only when it is single-thread-reachable: its
    # creator plus flows into *confined* classes.  (A lock guarding
    # shared-immutable reads typically never escapes its creator at
    # all, which this covers; one that is itself stored in shared
    # state can be acquired cross-thread and must keep the slow path.)
    confined_ok = set(confined)
    lock_sites: List[LockSite] = []
    for path, line, owner, var, cls, flows, unsafe in transfer.locks:
        if unsafe is not None:
            verdict, reason = False, unsafe
        else:
            bad = sorted(f for f in flows if f not in confined_ok)
            if bad:
                why = ", ".join(
                    f"{b} ({shared.get(b, 'not proven confined')})"
                    for b in bad)
                verdict, reason = False, f"guards shared state: {why}"
            elif flows:
                verdict = True
                reason = "guards only thread-confined state: " \
                    + ", ".join(sorted(flows))
            else:
                verdict = True
                reason = "only reachable from its creating thread"
        lock_sites.append(LockSite(
            path=path, line=line, owner=owner, var=var, cls=cls,
            elidable=verdict, reason=reason))
    lock_sites.sort(key=lambda s: (s.path, s.line, s.var))

    return ElideModel(
        flow=model,
        confined=confined,
        immutable=immutable,
        shared=dict(sorted(shared.items())),
        lock_sites=lock_sites)


def classify_sources(sources: Sequence[Tuple[str, str]]) -> ElideModel:
    return classify(scan_sources(sources), sources)


def classify_paths(paths: Iterable[str]) -> ElideModel:
    from pathlib import Path

    sources: List[Tuple[str, str]] = []
    for path in paths:
        p = Path(path)
        if p.is_dir():
            for child in sorted(p.rglob("*.py")):
                sources.append((str(child), child.read_text()))
        elif p.suffix == ".py" and p.exists():
            sources.append((str(p), p.read_text()))
    return classify_sources(sources)
