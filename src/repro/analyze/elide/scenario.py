"""The ``repro elide`` verification suite.

An elision analysis that is wrong does not produce a bad report — it
produces a *differently scheduled simulation*, which is far worse.  So
the suite is built around one invariant: **elision must be
unobservable** except in host cost and event count.

* **static self-consistency** — the classification is deterministic
  (byte-identical ``amberelide/1`` artifact across reruns) and the
  AMB301-AMB304 catalog fires exactly as specified on the bundled
  fixtures (including ``# repro: noqa[...]`` suppression);
* **artifact hygiene** — ``load_artifact`` never raises on truncated,
  malformed, or unknown-schema files, and a stale artifact silently
  disables elision (counted, never half-applied);
* **hint promotion** — classes AmberElide proves effectively immutable
  are promoted to ``replicate`` placement hints even when AmberFlow
  saw no foreign traffic;
* **soundness audit** — every runnable fixture executes under an
  auditing sanitizer with elision active in audit mode (interposition
  fully installed): any cross-thread touch of a claimed-confined
  object, any post-construction write to a claimed-immutable class,
  and any cross-thread acquire of an elision-marked lock is a hard
  ``AMBELIDE-UNSOUND`` finding.  A deliberately unsound elision set is
  also run to prove the auditor has teeth;
* **``--verify``** adds: bounded AmberCheck exploration with elision
  active, bit-identical results/elapsed (fixtures and the AmberPerf
  macro apps) between elision on and off, elision-effectiveness
  counters (``lock_elided_total`` > 0, ``lock_elide_bailout_total``
  == 0), and the perf trajectory against the committed bench baseline.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analyze.elide import runtime as _ert
from repro.analyze.elide.artifact import (
    ELIDE_SCHEMA,
    ElideArtifact,
    build_artifact,
    load_artifact,
)
from repro.analyze.elide.diagnostics import diagnose
from repro.analyze.elide.fixtures import FIXTURES, ElideFixture
from repro.analyze.elide.model import classify_sources
from repro.analyze.lint import LintFinding

#: What ``repro elide`` analyzes when no paths are given.
DEFAULT_PATHS = ("src/repro/apps", "examples")

#: The AmberPerf macro benchmarks the perf-trajectory outcome gates on.
MACRO_BENCHES = ("sor_sim", "queens_sim", "matmul_sim")

#: Committed bench baseline the elision-active suite is compared to.
BASELINE_BENCH = "benchmarks/baseline/BENCH_baseline.json"

#: Improvement/regression bar for the perf trajectory (fractional).
PERF_THRESHOLD = 0.10


# ---------------------------------------------------------------------------
# Report plumbing
# ---------------------------------------------------------------------------


@dataclass
class ElideOutcome:
    """One scenario's verdict."""

    name: str
    ok: bool
    details: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "ok": self.ok,
                "details": list(self.details)}

    def render(self) -> str:
        mark = "ok " if self.ok else "FAIL"
        body = "".join(f"\n      {line}" for line in self.details)
        return f"  [{mark}] {self.name}{body}"


@dataclass
class ElideReport:
    """Everything ``repro elide`` produced in one run."""

    outcomes: List[ElideOutcome]
    artifact: ElideArtifact
    findings: List[LintFinding]
    paths: List[str]
    verify: bool
    #: Bench document of the perf-trajectory run (``--verify`` only).
    bench: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def findings_payload(self) -> List[Dict[str, Any]]:
        return [{"path": f.path, "line": f.line, "rule": f.rule,
                 "message": f.message} for f in self.findings]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": "amberelide-report/1",
            "ok": self.ok,
            "paths": list(self.paths),
            "verify": self.verify,
            "outcomes": [o.as_dict() for o in self.outcomes],
            "artifact": self.artifact.as_dict(),
            "findings": self.findings_payload(),
        }

    def render(self) -> str:
        lines = [f"AmberElide over {', '.join(self.paths)}:"]
        lines.append(f"  confined: "
                     f"{', '.join(self.artifact.confined) or '(none)'}")
        lines.append(f"  immutable: "
                     f"{', '.join(self.artifact.immutable) or '(none)'}")
        elidable = [f"{owner}/{cls}"
                    for owner, cls in self.artifact.lock_owners]
        lines.append(f"  elidable lock owners: "
                     f"{', '.join(elidable) or '(none)'}")
        for finding in self.findings:
            lines.append(f"  {finding.path}:{finding.line} "
                         f"{finding.rule} {finding.message}")
        lines.append("scenarios:")
        for outcome in self.outcomes:
            lines.append(outcome.render())
        passed = sum(1 for o in self.outcomes if o.ok)
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(f"overall: {verdict} "
                     f"({passed}/{len(self.outcomes)} scenarios)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Running programs under (and without) elision
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _RunRecord:
    """The observables one program run is compared on."""

    value: str          # repr of the main thread's result
    elapsed_us: float
    events: int
    elided: int
    bailouts: int

    def core(self) -> Tuple[str, float]:
        """The bits elision must never change."""
        return (self.value, self.elapsed_us)


def _plain_run(fx: ElideFixture) -> _RunRecord:
    from repro.sim.cluster import ClusterConfig
    from repro.sim.program import AmberProgram

    config = ClusterConfig(nodes=fx.nodes,
                           cpus_per_node=fx.cpus_per_node)
    result = AmberProgram(config).run(fx.load_main())
    counters = result.cluster.metrics.counters
    elided = counters.get("lock_elided_total")
    bailed = counters.get("lock_elide_bailout_total")
    return _RunRecord(
        value=repr(result.value),
        elapsed_us=result.elapsed_us,
        events=result.cluster.sim.events_run,
        elided=elided.value if elided else 0,
        bailouts=bailed.value if bailed else 0)


def _activated(fx: ElideFixture, audit: bool = False) -> ElideArtifact:
    """Classify ``fx`` and activate its artifact (caller deactivates)."""
    emodel = classify_sources(fx.sources())
    artifact = build_artifact(emodel, fx.sources())
    if not artifact.activate(source_texts=dict(fx.sources()),
                             audit=audit):
        raise RuntimeError(f"fixture artifact unexpectedly stale: "
                           f"{fx.name}")
    return artifact


# ---------------------------------------------------------------------------
# The auditing sanitizer
# ---------------------------------------------------------------------------


def _make_audit_sanitizer() -> Any:
    """An AmberSan subclass that additionally cross-checks the *active
    elision set's claims* against the observed run:

    * a claimed-confined object touched by a second thread,
    * a post-construction write to a claimed-immutable class,
    * an elision-marked lock acquired by a second thread

    each raise a hard ``AMBELIDE-UNSOUND`` finding.  Built lazily so
    importing this module never drags the sanitizer in."""
    from repro.analyze.sanitizer import Finding, Sanitizer

    class _AuditSanitizer(Sanitizer):
        def __init__(self) -> None:
            super().__init__()
            active = _ert.active()
            self._au_confined = (active.confined if active
                                 else frozenset())
            self._au_immutable = (active.immutable if active
                                  else frozenset())
            #: vaddr -> tid of the first toucher (confined claim).
            self._au_first: Dict[int, int] = {}
            #: lock id() -> tid of the first acquirer (lock claim).
            self._au_lock_first: Dict[int, int] = {}

        def _unsound(self, obj: Any, vaddr: int, name: str,
                     message: str, frame: Any = None) -> None:
            thread, _, op = self._current[-1] if self._current \
                else (None, 0, "?")
            site = (self._site(frame, op, thread)
                    if thread is not None else None)
            self._report(Finding(
                rule="AMBELIDE-UNSOUND",
                obj_cls=type(obj).__name__, obj_vaddr=vaddr,
                field=name, message=message, site=site))

        def _record_access(self, obj: Any, obj_dict: Dict[str, Any],
                           vaddr: int, name: str, is_write: bool,
                           frame: Any) -> None:
            cls = type(obj).__name__
            if self._current:
                tid = self._current[-1][0].tid
                if cls in self._au_confined:
                    first = self._au_first.setdefault(vaddr, tid)
                    if first != tid:
                        self._unsound(
                            obj, vaddr, name,
                            f"claimed-confined {cls} {vaddr:#x} "
                            f"touched by threads {first} and {tid}",
                            frame)
                if is_write and cls in self._au_immutable:
                    self._unsound(
                        obj, vaddr, name,
                        f"claimed-immutable {cls} {vaddr:#x} field "
                        f"{name!r} written after construction", frame)
            super()._record_access(obj, obj_dict, vaddr, name,
                                   is_write, frame)

        def on_acquire(self, sync_obj: Any, thread: Any,
                       order: bool = True) -> None:
            if getattr(sync_obj, "_elide_ok", False):
                first = self._au_lock_first.setdefault(
                    id(sync_obj), thread.tid)
                if first != thread.tid:
                    self._report(Finding(
                        rule="AMBELIDE-UNSOUND",
                        obj_cls=type(sync_obj).__name__,
                        obj_vaddr=sync_obj.vaddr, field="<lock>",
                        message=(
                            f"elision-marked "
                            f"{type(sync_obj).__name__} "
                            f"{sync_obj.vaddr:#x} acquired by threads "
                            f"{first} and {thread.tid}"),
                        site=None))
            super().on_acquire(sync_obj, thread, order=order)

    return _AuditSanitizer()


def _audit_run(fx: ElideFixture) -> Tuple[_RunRecord, List[Any]]:
    """Run ``fx`` sanitized under the auditing sanitizer; the caller
    has already activated an elision set (audit mode)."""
    from repro.analyze import runtime as _rt
    from repro.sim.cluster import ClusterConfig
    from repro.sim.program import AmberProgram

    config = ClusterConfig(nodes=fx.nodes,
                           cpus_per_node=fx.cpus_per_node)
    _rt.set_sanitizer_factory(_make_audit_sanitizer)
    try:
        with _rt.sanitize_runs() as sanitizers:
            result = AmberProgram(config, sanitize=True).run(
                fx.load_main())
    finally:
        _rt.set_sanitizer_factory(None)
    findings = [f for s in sanitizers for f in s.report().findings]
    counters = result.cluster.metrics.counters
    elided = counters.get("lock_elided_total")
    bailed = counters.get("lock_elide_bailout_total")
    record = _RunRecord(
        value=repr(result.value),
        elapsed_us=result.elapsed_us,
        events=result.cluster.sim.events_run,
        elided=elided.value if elided else 0,
        bailouts=bailed.value if bailed else 0)
    return record, findings


# ---------------------------------------------------------------------------
# Static scenarios
# ---------------------------------------------------------------------------


def _outcome_deterministic(
        sources: Sequence[Tuple[str, str]]) -> ElideOutcome:
    """Scan everything twice; artifacts must be byte-identical."""
    corpora: List[Tuple[str, List[Tuple[str, str]]]] = [
        (fx.name, fx.sources()) for fx in FIXTURES.values()]
    corpora.append(("analyzed-paths", list(sources)))
    details: List[str] = []
    ok = True
    for name, corpus in corpora:
        first = build_artifact(classify_sources(corpus), corpus)
        second = build_artifact(classify_sources(corpus), corpus)
        if first.to_json() != second.to_json() or \
                first.fingerprint != second.fingerprint:
            ok = False
            details.append(f"{name}: rerun artifact differs")
    details.append(f"{len(corpora)} corpora scanned twice, "
                   f"byte-identical artifacts")
    return ElideOutcome("deterministic-analysis", ok, details)


def _outcome_fixture_catalog() -> ElideOutcome:
    """Classification and AMB3xx findings match the catalog exactly."""
    details: List[str] = []
    ok = True
    for fx in FIXTURES.values():
        emodel = classify_sources(fx.sources())
        artifact = build_artifact(emodel, fx.sources())
        findings = diagnose(emodel, fx.sources())
        got_rules = tuple(sorted(f.rule for f in findings))
        checks = [
            ("rules", got_rules, tuple(sorted(fx.expected_rules))),
            ("confined", tuple(sorted(emodel.confined)),
             tuple(sorted(fx.confined))),
            ("immutable", tuple(sorted(emodel.immutable)),
             tuple(sorted(fx.immutable))),
            ("lock-owners", tuple(artifact.lock_owners),
             tuple(sorted(fx.elidable_owners))),
        ]
        bad = [f"{what}: got {got!r}, want {want!r}"
               for what, got, want in checks if got != want]
        if bad:
            ok = False
            details.append(f"{fx.name}: " + "; ".join(bad))
        else:
            details.append(f"{fx.name}: {len(findings)} finding(s), "
                           f"classification as expected")
    return ElideOutcome("fixture-catalog", ok, details)


def _outcome_artifact_roundtrip(artifact: ElideArtifact) -> ElideOutcome:
    """Serialization invariants: load never raises, stale never
    activates (and is counted)."""
    details: List[str] = []
    ok = True

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "elide.json"
        path.write_text(artifact.to_json())
        loaded = load_artifact(str(path))
        if not loaded.valid or \
                loaded.fingerprint != artifact.fingerprint:
            ok = False
            details.append("roundtrip changed the fingerprint")
        else:
            details.append("json roundtrip preserves the fingerprint")

        hostile = {
            "truncated": artifact.to_json()[:37],
            "malformed": "[1, 2, 3]\n",
            "binary": "\x00\x01\x02",
            "unknown-schema": json.dumps(
                {"schema": "amberelide/99", "confined": ["X"]}),
        }
        for name, text in hostile.items():
            path.write_text(text)
            try:
                bad = load_artifact(str(path))
            except Exception as error:   # pragma: no cover - the bug
                ok = False
                details.append(f"{name}: load raised {error!r}")
                continue
            if bad.valid:
                ok = False
                details.append(f"{name}: loaded as valid")
        path.unlink()
        missing = load_artifact(str(path))
        if missing.valid:
            ok = False
            details.append("missing file loaded as valid")
        details.append(f"{len(hostile) + 1} hostile loads, "
                       f"none raised, none valid")

    # Staleness: a changed source refuses activation and is counted.
    fx = FIXTURES["confined-counter"]
    art = build_artifact(classify_sources(fx.sources()), fx.sources())
    before = _ert.STALE_DISABLES
    activated = art.activate(
        source_texts={fx.path: fx.source + "\n# drifted\n"})
    if activated or _ert.active() is not None:
        ok = False
        details.append("stale artifact activated")
        _ert.deactivate()
    if _ert.STALE_DISABLES != before + 1:
        ok = False
        details.append("stale disable was not counted")
    else:
        details.append("stale artifact refused and counted "
                       f"(STALE_DISABLES={_ert.STALE_DISABLES})")
    invalid = ElideArtifact(schema="amberelide/99")
    if invalid.activate() or _ert.active() is not None:
        ok = False
        details.append("invalid-schema artifact activated")
        _ert.deactivate()
    return ElideOutcome("artifact-roundtrip", ok, details)


#: Analysis-only source proving the hint promotion adds information:
#: ``Settings`` has no cross-object callers, so AmberFlow alone derives
#: no ``replicate`` hint — AmberElide's immutability proof does.
_PROMOTION_SOURCE = '''\
from repro.sim import SimObject
from repro.sim.syscalls import Charge, Invoke, New


class Settings(SimObject):
    def __init__(self, depth: int) -> None:
        self.depth = depth

    def limit(self, ctx):
        yield Charge(1.0)
        return self.depth * 2


def main(ctx):
    settings = yield New(Settings, 4)
    value = yield Invoke(settings, "limit")
    return value
'''


def _outcome_hint_promotion() -> ElideOutcome:
    """AmberElide-immutable classes become ``replicate`` hints."""
    from repro.analyze.flow.hints import derive_hints
    from repro.analyze.flow.model import scan_sources

    details: List[str] = []
    ok = True
    sources = [("<fixture:promotion>", _PROMOTION_SOURCE)]
    flow = scan_sources(sources)
    emodel = classify_sources(sources)
    if "Settings" not in emodel.immutable:
        ok = False
        details.append("Settings not classified immutable")
    plain = {h.cls for h in derive_hints(flow).hints
             if h.kind == "replicate"}
    promoted = {h.cls for h in
                derive_hints(flow,
                             extra_immutable=emodel.immutable).hints
                if h.kind == "replicate"}
    if "Settings" in plain:
        ok = False
        details.append("flow alone already replicated Settings "
                       "(fixture lost its point)")
    if "Settings" not in promoted:
        ok = False
        details.append("promotion did not add the replicate hint")
    else:
        details.append("Settings: no flow hint -> replicate hint "
                       "via extra_immutable")

    # Promotion must respect spread: a fork-target class proven
    # immutable still must not be replicated.
    fx = FIXTURES["immutable-table"]
    tflow = scan_sources(fx.sources())
    tmodel = classify_sources(fx.sources())
    table_hints = derive_hints(
        tflow, extra_immutable=tmodel.immutable).hints
    if any(h.kind == "replicate" and h.cls == "TableReader"
           for h in table_hints):
        ok = False
        details.append("spread class TableReader was replicated")
    if not any(h.kind == "replicate" and h.cls == "SumTable"
               for h in table_hints):
        ok = False
        details.append("SumTable lost its replicate hint")
    else:
        details.append("SumTable replicated, spread TableReader not")
    return ElideOutcome("hint-promotion", ok, details)


# ---------------------------------------------------------------------------
# Dynamic scenarios
# ---------------------------------------------------------------------------


def _outcome_soundness_audit() -> ElideOutcome:
    """Audit-mode runs observe every access; claims must hold — and a
    deliberately unsound set must be *caught*."""
    details: List[str] = []
    ok = True
    runnable = [fx for fx in FIXTURES.values() if fx.runnable]
    for fx in runnable:
        _activated(fx, audit=True)
        try:
            record, findings = _audit_run(fx)
        finally:
            _ert.deactivate()
        unsound = [f for f in findings
                   if f.rule == "AMBELIDE-UNSOUND"]
        problems: List[str] = []
        if findings:
            problems.append(
                f"{len(findings)} sanitizer finding(s), "
                f"{len(unsound)} unsound")
        if record.value != repr(fx.expect_result):
            problems.append(f"result {record.value}")
        if record.bailouts:
            problems.append(f"{record.bailouts} elision bailout(s)")
        if fx.expect_elided and record.elided == 0:
            problems.append("nothing elided")
        if not fx.expect_elided and record.elided != 0:
            problems.append(f"{record.elided} unexpected elisions")
        if problems:
            ok = False
            details.append(f"{fx.name}: " + "; ".join(problems))
        else:
            details.append(f"{fx.name}: clean audit, "
                           f"{record.elided} op(s) elided")

    # Teeth check: claim the shared pool confined and its gate
    # elidable; the audit must produce AMBELIDE-UNSOUND findings.
    fx = FIXTURES["shared-pool"]
    _ert.activate(_ert.ElideSet(
        skip_classes=frozenset({"JobPool"}),
        lock_owners=frozenset({(_ert.MAIN_OWNER, "Lock")}),
        confined=frozenset({"JobPool"}),
        immutable=frozenset(),
        fingerprint="deliberately-unsound"), audit=True)
    try:
        record, findings = _audit_run(fx)
    finally:
        _ert.deactivate()
    caught = [f for f in findings if f.rule == "AMBELIDE-UNSOUND"]
    if not caught:
        ok = False
        details.append("unsound control set produced no "
                       "AMBELIDE-UNSOUND finding")
    else:
        details.append(f"unsound control set caught: "
                       f"{len(caught)} AMBELIDE-UNSOUND finding(s)")
    return ElideOutcome("soundness-audit", ok, details)


def _outcome_schedule_audit() -> ElideOutcome:
    """Bounded AmberCheck exploration with elision active (audit
    mode): every explored schedule must stay clean and converge."""
    from repro.analyze.check import check_program
    from repro.sim.cluster import ClusterConfig
    from repro.sim.program import AmberProgram

    details: List[str] = []
    ok = True
    for name in ("confined-counter", "scratch-workers"):
        fx = FIXTURES[name]
        config = ClusterConfig(nodes=fx.nodes,
                               cpus_per_node=fx.cpus_per_node)
        main = fx.load_main()

        def program() -> Any:
            return AmberProgram(config, sanitize=True).run(main)

        _activated(fx, audit=True)
        try:
            report = check_program(program, name=f"elide:{name}",
                                   budget=64)
        finally:
            _ert.deactivate()
        if not report.ok:
            ok = False
            details.append(
                f"{name}: {len(report.findings)} finding(s) over "
                f"{report.schedules} schedule(s)")
        else:
            details.append(f"{name}: {report.schedules} schedule(s) "
                           f"explored, clean")
    return ElideOutcome("schedule-audit", ok, details)


def _outcome_bit_identical(fast: bool) -> ElideOutcome:
    """Elision on vs. off: results and simulated elapsed bit-identical,
    runs deterministic per mode, and elision never adds events — on the
    fixtures and on the AmberPerf macro apps."""
    from repro.perf import harness as _harness

    details: List[str] = []
    ok = True
    for fx in (fx for fx in FIXTURES.values() if fx.runnable):
        off = [_plain_run(fx), _plain_run(fx)]
        _activated(fx)
        try:
            on = [_plain_run(fx), _plain_run(fx)]
        finally:
            _ert.deactivate()
        problems: List[str] = []
        if off[0] != off[1] or on[0] != on[1]:
            problems.append("nondeterministic")
        if off[0].core() != on[0].core():
            problems.append(
                f"off={off[0].core()} on={on[0].core()}")
        if on[0].events > off[0].events:
            problems.append(f"events grew {off[0].events} -> "
                            f"{on[0].events}")
        if fx.expect_elided and on[0].events >= off[0].events:
            problems.append("no event was elided")
        if on[0].bailouts:
            problems.append(f"{on[0].bailouts} bailout(s)")
        if problems:
            ok = False
            details.append(f"{fx.name}: " + "; ".join(problems))
        else:
            details.append(
                f"{fx.name}: bit-identical, events "
                f"{off[0].events} -> {on[0].events}, "
                f"{on[0].elided} op(s) elided")

    apps_artifact = _analyze_paths_artifact(["src/repro/apps"])
    benches = {
        "sor_sim": _harness._bench_sor_sim,
        "queens_sim": _harness._bench_queens_sim,
        "matmul_sim": _harness._bench_matmul_sim,
    }
    for name, bench in benches.items():
        off_runs = [bench(fast).fingerprint for _ in range(2)]
        if not apps_artifact.activate():
            ok = False
            details.append(f"{name}: apps artifact stale on disk")
            continue
        try:
            on_runs = [bench(fast).fingerprint for _ in range(2)]
        finally:
            _ert.deactivate()
        if len(set(off_runs)) != 1 or len(set(on_runs)) != 1:
            ok = False
            details.append(f"{name}: nondeterministic fingerprints")
        elif off_runs[0] != on_runs[0]:
            ok = False
            details.append(f"{name}: fingerprint {off_runs[0]} -> "
                           f"{on_runs[0]}")
        else:
            details.append(f"{name}: fingerprint {on_runs[0]} "
                           f"identical with elision active")
    return ElideOutcome("bit-identical", ok, details)


def _analyze_paths_artifact(paths: Sequence[str]) -> ElideArtifact:
    sources = _read_sources(paths)
    return build_artifact(classify_sources(sources), sources)


def _outcome_perf_trajectory(fast: bool,
                             report: ElideReport) -> ElideOutcome:
    """With elision active, the macro suite must beat the committed
    baseline on at least one benchmark (and regress on none)."""
    from repro.perf.benchfile import (bench_dict, compare_benches,
                                      load_bench)
    from repro.perf.harness import run_suite

    details: List[str] = []
    baseline_path = Path(BASELINE_BENCH)
    if not baseline_path.exists():
        return ElideOutcome(
            "perf-trajectory", False,
            [f"missing baseline {BASELINE_BENCH}"])
    apps_artifact = _analyze_paths_artifact(["src/repro/apps"])
    if not apps_artifact.activate():
        return ElideOutcome("perf-trajectory", False,
                            ["apps artifact stale on disk"])
    try:
        suite = run_suite(fast=fast, reps=3, warmup=1,
                          only=["calibration", *MACRO_BENCHES])
    finally:
        _ert.deactivate()
    doc = bench_dict(suite)
    report.bench = doc
    result = compare_benches(load_bench(str(baseline_path)), doc,
                             threshold=PERF_THRESHOLD)
    macro = [d for d in result.deltas if d.name in MACRO_BENCHES]
    improved = [d for d in macro if d.improvement]
    regressed = [d for d in macro if d.regression]
    for delta in macro:
        verdict = ("improved" if delta.improvement else
                   "regressed" if delta.regression else "flat")
        details.append(
            f"{delta.name}: x{delta.ratio:.2f} vs baseline "
            f"(noise {delta.noise:.1%}) — {verdict}")
    ok = bool(improved) and not regressed
    if not improved:
        details.append(
            f"no macro benchmark improved beyond "
            f"1 + max({PERF_THRESHOLD:.0%}, noise)")
    return ElideOutcome("perf-trajectory", ok, details)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def _read_sources(paths: Sequence[str]) -> List[Tuple[str, str]]:
    sources: List[Tuple[str, str]] = []
    for path in paths:
        p = Path(path)
        if p.is_dir():
            for child in sorted(p.rglob("*.py")):
                sources.append((str(child), child.read_text()))
        elif p.suffix == ".py" and p.exists():
            sources.append((str(p), p.read_text()))
    return sources


def run_elide_scenarios(paths: Optional[Sequence[str]] = None,
                        fast: bool = False,
                        verify: bool = False) -> ElideReport:
    """Run the (static, and with ``verify`` also dynamic) suite."""
    if _ert.active() is not None:   # hygiene: never run nested
        _ert.deactivate()
    used_paths = [str(p) for p in (paths or DEFAULT_PATHS)]
    sources = _read_sources(used_paths)
    emodel = classify_sources(sources)
    artifact = build_artifact(emodel, sources)
    findings = diagnose(emodel, sources)

    outcomes = [
        _outcome_deterministic(sources),
        _outcome_fixture_catalog(),
        _outcome_artifact_roundtrip(artifact),
        _outcome_hint_promotion(),
        _outcome_soundness_audit(),
    ]
    report = ElideReport(outcomes=outcomes, artifact=artifact,
                         findings=findings, paths=used_paths,
                         verify=verify)
    if verify:
        outcomes.append(_outcome_schedule_audit())
        outcomes.append(_outcome_bit_identical(fast))
        outcomes.append(_outcome_perf_trajectory(fast, report))
    return report
