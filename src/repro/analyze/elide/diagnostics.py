"""AMB3xx: elision diagnostics derived from the classification.

Emitted as :class:`~repro.analyze.lint.LintFinding` instances so they
share the renderer, the JSON shape, and the ``# repro: noqa[...]``
suppression machinery with the AMB1xx lint and AMB2xx flow passes.

``AMB301``
    An elidable lock site: the lock is only reachable from one thread,
    so its acquire/release pairs will use the elided fast path.
``AMB302``
    An effectively-immutable class invoked across an object boundary
    that is never ``SetImmutable``-d: marking it unlocks replication
    (the hint derivation promotes it to ``replicate``).
``AMB303``
    An invocation performed while holding a lock whose receiver is
    proven confined or immutable — the guard is redundant.
``AMB304``
    A lock site the analysis could *not* elide, with the escape edge
    that defeated it (fork crossing, shared flow, untrackable
    binding).  Informational: it explains the verdict.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analyze.elide.model import ElideModel, LOCK_CLASSES
from repro.analyze.lint import LintFinding, filter_noqa

ELIDE_RULES: Dict[str, str] = {
    "AMB301": "lock only reachable from one thread (elidable)",
    "AMB302": "effectively-immutable class never marked SetImmutable",
    "AMB303": "lock-guarded invoke of confined/immutable receiver",
    "AMB304": "lock escapes its creating thread (kept un-elided)",
}

_SYNC_METHODS = {"acquire", "release", "enter", "exit", "wait",
                 "signal", "broadcast", "try_acquire",
                 "acquire_read", "release_read",
                 "acquire_write", "release_write"}


def diagnose(model: ElideModel,
             sources: Sequence[Tuple[str, str]]) -> List[LintFinding]:
    """Derive AMB301–AMB304 findings, noqa-filtered per source."""
    findings: List[LintFinding] = []
    flow = model.flow

    for site in model.lock_sites:
        if site.elidable:
            findings.append(LintFinding(
                site.path, site.line, "AMB301",
                f"{site.cls} {site.var!r} (owner {site.owner}) "
                f"{site.reason}; acquire/release will be elided"))
        else:
            findings.append(LintFinding(
                site.path, site.line, "AMB304",
                f"{site.cls} {site.var!r} (owner {site.owner}) "
                f"kept un-elided: {site.reason}"))

    immutable = set(model.immutable)
    invoked = flow.invoked_by()
    for cls in sorted(immutable):
        if cls in flow.immutable_classes:
            continue   # already SetImmutable-d somewhere
        cm = flow.classes.get(cls)
        if cm is None:
            continue
        foreign = {c for c in invoked.get(cls, ()) if c != cls}
        if not foreign:
            continue
        findings.append(LintFinding(
            cm.path, cm.line, "AMB302",
            f"class {cls} is effectively immutable (no field writes "
            f"outside __init__) and is invoked from "
            f"{', '.join(sorted(foreign))}; mark it SetImmutable to "
            f"enable replica caching"))

    quiet = set(model.confined) | immutable
    for inv in flow.invokes:
        if not inv.held or inv.receiver_class not in quiet:
            continue
        if inv.receiver_class in LOCK_CLASSES or \
                inv.method in _SYNC_METHODS:
            continue
        findings.append(LintFinding(
            inv.path, inv.line, "AMB303",
            f"invoke of {inv.receiver_class}.{inv.method} under held "
            f"lock ({', '.join(inv.held)}) is redundantly guarded: "
            f"the receiver is "
            + ("thread-confined" if inv.receiver_class
               in model.confined else "effectively immutable")))

    by_path = dict(sources)
    kept: List[LintFinding] = []
    for path in sorted({f.path for f in findings}):
        source = by_path.get(path, "")
        per_path = [f for f in findings if f.path == path]
        kept.extend(filter_noqa(per_path, source))
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept
