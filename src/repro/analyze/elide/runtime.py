"""Per-process registry of the active elision set.

Imported by the simulator's hot paths (``sim.kernel``, ``sim.sync``)
and by the sanitizer's field interposition, so — like
:mod:`repro.analyze.runtime` — it imports nothing outside the standard
library.  The hooks read the module-level views (:data:`SKIP`,
:data:`LOCK_OWNERS`) and bail on the empty set, so an elision-free run
pays one frozenset membership test per hook site at most.

Activation is all-or-nothing per process: exactly one
:class:`ElideSet` (derived from a verified ``amberelide/1`` artifact)
is active at a time.  ``audit=True`` activates lock elision but keeps
the sanitizer interposition fully installed so the soundness
verification can watch every field access of the classes the analysis
claimed confined or immutable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

#: Runtime owner name for locks created outside any user class (the
#: program's main thread runs inside the synthetic ``_MainObject``).
MAIN_OWNER = "<main>"

_MAIN_CLASSES = frozenset({"_MainObject"})


@dataclass(frozen=True)
class ElideSet:
    """The runtime-consumable facts of one elide artifact."""

    #: Classes whose field interposition may be skipped (confined or
    #: effectively immutable).
    skip_classes: FrozenSet[str] = frozenset()
    #: ``(owner, lock_cls)`` pairs: every lock of ``lock_cls`` created
    #: by an activation of ``owner`` (class name, or ``<main>``) is
    #: proven single-thread and may use the elided fast path.
    lock_owners: FrozenSet[Tuple[str, str]] = frozenset()
    #: Thread-confined classes (subset of ``skip_classes``).
    confined: FrozenSet[str] = frozenset()
    #: Effectively-immutable classes (subset of ``skip_classes``).
    immutable: FrozenSet[str] = frozenset()
    #: Fingerprint of the artifact this set came from (diagnostics).
    fingerprint: str = ""


#: The active elision set, or None.
ACTIVE: Optional[ElideSet] = None

#: True while the soundness audit is running: lock elision stays on,
#: but the interposition skip is disabled so every access is observed.
AUDIT: bool = False

#: Hot-path views (empty when nothing is active).
SKIP: FrozenSet[str] = frozenset()
LOCK_OWNERS: FrozenSet[Tuple[str, str]] = frozenset()

#: Times activation was refused because the artifact was stale
#: (fingerprint/source mismatch) — the "silently disabled" counter.
STALE_DISABLES = 0


def activate(elide_set: ElideSet, audit: bool = False) -> None:
    """Make ``elide_set`` the process-wide elision set."""
    global ACTIVE, AUDIT, SKIP, LOCK_OWNERS
    if ACTIVE is not None:
        raise RuntimeError("an elision set is already active")
    ACTIVE = elide_set
    AUDIT = audit
    SKIP = frozenset() if audit else elide_set.skip_classes
    LOCK_OWNERS = elide_set.lock_owners


def deactivate() -> None:
    global ACTIVE, AUDIT, SKIP, LOCK_OWNERS
    ACTIVE = None
    AUDIT = False
    SKIP = frozenset()
    LOCK_OWNERS = frozenset()


def active() -> Optional[ElideSet]:
    return ACTIVE


def note_stale() -> None:
    """Record one silent elision-disable on a stale artifact."""
    global STALE_DISABLES
    STALE_DISABLES += 1


def lock_owner_name(creator_cls: str) -> str:
    """Map a creating activation's class name to the artifact's owner
    name (the synthetic main object counts as ``<main>``)."""
    if creator_cls in _MAIN_CLASSES:
        return MAIN_OWNER
    return creator_cls
