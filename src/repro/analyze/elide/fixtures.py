"""The AmberElide fixture catalog.

Each fixture is one source string that serves two masters: the static
pass scans it (classification + AMB3xx findings are asserted against
the expectations below), and the dynamic verification ``exec``-s it
and runs its ``main`` under the simulator — the *same text* drives
both, so a fixture cannot quietly diverge from what the analysis was
graded on.  The ``_noqa`` twins prove the suppression machinery works
for the AMB3xx rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

#: Common preamble: fixtures import the real simulator API, so the
#: exec-ed module is an ordinary Amber program.
_PRELUDE = """\
from repro.sim import SimObject
from repro.sim.syscalls import Charge, Fork, Invoke, Join, New
from repro.sim.sync import Lock
"""

_CONFINED_COUNTER = _PRELUDE + """\

ROUNDS = 12


class Tally(SimObject):
    def __init__(self) -> None:
        self.total = 0

    def bump(self, ctx, amount):
        self.total += amount
        yield Charge(1.0)
        return self.total

    def snapshot(self, ctx):
        return self.total


def main(ctx):
    tally = yield New(Tally)
    gate = yield New(Lock)
    for round_no in range(ROUNDS):
        yield Invoke(gate, "acquire")
        yield Invoke(tally, "bump", round_no)
        yield Invoke(gate, "release")
    result = yield Invoke(tally, "snapshot")
    return result
"""

_CONFINED_COUNTER_NOQA = _CONFINED_COUNTER.replace(
    "    gate = yield New(Lock)",
    "    gate = yield New(Lock)  # repro: noqa[AMB301]").replace(
    '        yield Invoke(tally, "bump", round_no)',
    '        yield Invoke(tally, "bump", round_no)'
    '  # repro: noqa[AMB303]')

_SHARED_POOL = _PRELUDE + """\

ITEMS = 10


class JobPool(SimObject):
    def __init__(self, items: int) -> None:
        self.items = list(range(items))
        self.taken = 0

    def take(self, ctx):
        yield Charge(1.0)
        if not self.items:
            return None
        self.taken += 1
        return self.items.pop(0)


class PoolWorker(SimObject):
    def __init__(self, pool: "JobPool", gate) -> None:
        self.pool = pool
        self.gate = gate
        self.claimed = 0

    def run(self, ctx):
        while True:
            yield Invoke(self.gate, "acquire")
            job = yield Invoke(self.pool, "take")
            yield Invoke(self.gate, "release")
            if job is None:
                return self.claimed
            self.claimed += 1


def main(ctx):
    pool = yield New(JobPool, ITEMS)
    gate = yield New(Lock)
    workers = []
    for index in range(2):
        worker = yield New(PoolWorker, pool, gate, on_node=index % 2)
        workers.append(worker)
    threads = []
    for worker in workers:
        thread = yield Fork(worker, "run")
        threads.append(thread)
    total = 0
    for thread in threads:
        claimed = yield Join(thread)
        total += claimed
    return total
"""

_SHARED_POOL_NOQA = _SHARED_POOL.replace(
    "    gate = yield New(Lock)",
    "    gate = yield New(Lock)  # repro: noqa[AMB304]")

_IMMUTABLE_TABLE = _PRELUDE + """\

SIZE = 8


class SumTable(SimObject):
    def __init__(self, size: int) -> None:
        self.values = [v * v for v in range(size)]

    def lookup(self, ctx, index):
        yield Charge(1.0)
        return self.values[index]


class TableReader(SimObject):
    def __init__(self, table: "SumTable", size: int) -> None:
        self.table = table
        self.size = size

    def run(self, ctx):
        total = 0
        for index in range(self.size):
            value = yield Invoke(self.table, "lookup", index)
            total += value
        return total


def main(ctx):
    table = yield New(SumTable, SIZE)
    readers = []
    for index in range(2):
        reader = yield New(TableReader, table, SIZE, on_node=index % 2)
        readers.append(reader)
    threads = []
    for reader in readers:
        thread = yield Fork(reader, "run")
        threads.append(thread)
    total = 0
    for thread in threads:
        part = yield Join(thread)
        total += part
    return total
"""

_IMMUTABLE_TABLE_NOQA = _IMMUTABLE_TABLE.replace(
    "class SumTable(SimObject):",
    "class SumTable(SimObject):  # repro: noqa[AMB302]")

_SCRATCH_WORKERS = _PRELUDE + """\

STEPS = 6


class Scratch(SimObject):
    def __init__(self) -> None:
        self.value = 0

    def bump(self, ctx, amount):
        self.value += amount
        yield Charge(1.0)
        return self.value


class Cruncher(SimObject):
    def __init__(self, steps: int) -> None:
        self.steps = steps

    def run(self, ctx):
        scratch = yield New(Scratch)
        latch = yield New(Lock)
        total = 0
        for step in range(self.steps):
            yield Invoke(latch, "acquire")
            total = yield Invoke(scratch, "bump", step)
            yield Invoke(latch, "release")
        return total


def main(ctx):
    crunchers = []
    for index in range(2):
        cruncher = yield New(Cruncher, STEPS, on_node=index % 2)
        crunchers.append(cruncher)
    threads = []
    for cruncher in crunchers:
        thread = yield Fork(cruncher, "run")
        threads.append(thread)
    grand = 0
    for thread in threads:
        part = yield Join(thread)
        grand += part
    return grand
"""


@dataclass(frozen=True)
class ElideFixture:
    """One catalog entry and everything asserted about it."""

    name: str
    source: str
    #: Expected AMB3xx rule names, sorted, with multiplicity.
    expected_rules: Tuple[str, ...]
    confined: Tuple[str, ...]
    immutable: Tuple[str, ...]
    #: Expected elidable ``(owner, lock_cls)`` pairs.
    elidable_owners: Tuple[Tuple[str, str], ...]
    #: Whether the dynamic verification runs ``main``.
    runnable: bool
    #: Expected ``main`` return value (runnable fixtures only).
    expect_result: Any = None
    #: Whether elision-on runs must show ``lock_elided_total > 0``.
    expect_elided: bool = False
    nodes: int = 2
    cpus_per_node: int = 2

    @property
    def path(self) -> str:
        return f"<fixture:{self.name}>"

    def sources(self) -> List[Tuple[str, str]]:
        return [(self.path, self.source)]

    def load_main(self) -> Callable[..., Any]:
        """Exec the fixture text and hand back its ``main``."""
        namespace: Dict[str, Any] = {}
        exec(compile(self.source, self.path, "exec"),  # noqa: S102
             namespace)
        main = namespace["main"]
        assert callable(main)
        return main


FIXTURES: Dict[str, ElideFixture] = {
    fixture.name: fixture for fixture in (
        ElideFixture(
            name="confined-counter",
            source=_CONFINED_COUNTER,
            expected_rules=("AMB301", "AMB303"),
            confined=("Tally",),
            immutable=(),
            elidable_owners=(("<main>", "Lock"),),
            runnable=True,
            expect_result=sum(range(12)),
            expect_elided=True),
        ElideFixture(
            name="confined-counter-noqa",
            source=_CONFINED_COUNTER_NOQA,
            expected_rules=(),
            confined=("Tally",),
            immutable=(),
            elidable_owners=(("<main>", "Lock"),),
            runnable=False),
        ElideFixture(
            name="shared-pool",
            source=_SHARED_POOL,
            expected_rules=("AMB304",),
            confined=(),
            immutable=(),
            elidable_owners=(),
            runnable=True,
            expect_result=10,
            expect_elided=False),
        ElideFixture(
            name="shared-pool-noqa",
            source=_SHARED_POOL_NOQA,
            expected_rules=(),
            confined=(),
            immutable=(),
            elidable_owners=(),
            runnable=False),
        ElideFixture(
            name="immutable-table",
            source=_IMMUTABLE_TABLE,
            expected_rules=("AMB302",),
            confined=(),
            immutable=("SumTable", "TableReader"),
            elidable_owners=(),
            runnable=True,
            expect_result=2 * sum(v * v for v in range(8)),
            expect_elided=False),
        ElideFixture(
            name="immutable-table-noqa",
            source=_IMMUTABLE_TABLE_NOQA,
            expected_rules=(),
            confined=(),
            immutable=("SumTable", "TableReader"),
            elidable_owners=(),
            runnable=False),
        ElideFixture(
            name="scratch-workers",
            source=_SCRATCH_WORKERS,
            expected_rules=("AMB301", "AMB303"),
            confined=("Scratch",),
            immutable=("Cruncher",),
            elidable_owners=(("Cruncher", "Lock"),),
            runnable=True,
            expect_result=2 * sum(range(6)),
            expect_elided=True),
    )
}
