"""Per-process registry of the active sanitizer.

This module is imported by the simulator's hot paths (``sim.kernel``,
``sim.sync``) and therefore imports nothing outside the standard
library: the hooks read :data:`ACTIVE` and bail on ``None``, so an
unsanitized run pays a single module-attribute load per hook site.

Exactly one sanitizer can be active at a time (the simulator is
single-threaded, and a sanitizer's class-level attribute hooks are
process-global).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analyze.sanitizer import Sanitizer

#: The sanitizer observing the currently running simulation, if any.
ACTIVE: Optional["Sanitizer"] = None

_AUTO: bool = False
_COLLECTED: Optional[List["Sanitizer"]] = None


def activate(sanitizer: "Sanitizer") -> None:
    """Make ``sanitizer`` the process-wide active sanitizer."""
    global ACTIVE
    if ACTIVE is not None:
        raise RuntimeError("a sanitizer is already active")
    ACTIVE = sanitizer


def deactivate() -> None:
    global ACTIVE
    ACTIVE = None


def active() -> Optional["Sanitizer"]:
    return ACTIVE


def auto_enabled() -> bool:
    """True inside a :func:`sanitize_runs` block: every
    :class:`repro.sim.program.AmberProgram` run sanitizes itself."""
    return _AUTO


def collect(sanitizer: "Sanitizer") -> None:
    """Hand a finished run's sanitizer to the enclosing
    :func:`sanitize_runs` block (no-op outside one)."""
    if _COLLECTED is not None:
        _COLLECTED.append(sanitizer)


@contextmanager
def sanitize_runs() -> Iterator[List["Sanitizer"]]:
    """Sanitize every simulated program run in the block.

    Yields a list that accumulates the :class:`Sanitizer` of each run
    started inside the block — the mechanism behind the CLI's
    ``--sanitize`` flag, which cannot thread a parameter through every
    workload entry point.
    """
    global _AUTO, _COLLECTED
    saved = (_AUTO, _COLLECTED)
    collected: List["Sanitizer"] = []
    _AUTO, _COLLECTED = True, collected
    try:
        yield collected
    finally:
        _AUTO, _COLLECTED = saved
