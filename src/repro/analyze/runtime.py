"""Per-process registry of the active sanitizer and schedule controller.

This module is imported by the simulator's hot paths (``sim.kernel``,
``sim.sync``, ``sim.network``) and therefore imports nothing outside
the standard library: the hooks read :data:`ACTIVE` / :data:`CONTROLLER`
and bail on ``None``, so an uninstrumented run pays a single
module-attribute load per hook site.

Exactly one sanitizer can be active at a time (the simulator is
single-threaded, and a sanitizer's class-level attribute hooks are
process-global), and likewise exactly one schedule controller — the
:class:`repro.analyze.check.ChoiceController` that AmberCheck installs
to record and force scheduling decisions.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analyze.check import ChoiceController
    from repro.analyze.sanitizer import Sanitizer

#: The sanitizer observing the currently running simulation, if any.
ACTIVE: Optional["Sanitizer"] = None

#: The schedule controller driving the currently running simulation, if
#: any.  Consulted by the kernel (preemption points), the sync objects
#: (waiter hand-off), the network (delivery order), and the
#: :class:`repro.sim.scheduler.ControlledScheduler` (ready-queue picks).
CONTROLLER: Optional["ChoiceController"] = None

_AUTO: bool = False
_COLLECTED: Optional[List["Sanitizer"]] = None
_SANITIZER_FACTORY: Optional[Callable[[], "Sanitizer"]] = None


def activate(sanitizer: "Sanitizer") -> None:
    """Make ``sanitizer`` the process-wide active sanitizer."""
    global ACTIVE
    if ACTIVE is not None:
        raise RuntimeError("a sanitizer is already active")
    ACTIVE = sanitizer


def deactivate() -> None:
    global ACTIVE
    ACTIVE = None


def active() -> Optional["Sanitizer"]:
    return ACTIVE


def install_controller(controller: "ChoiceController") -> None:
    """Make ``controller`` the process-wide schedule controller."""
    global CONTROLLER
    if CONTROLLER is not None:
        raise RuntimeError("a schedule controller is already installed")
    CONTROLLER = controller


def uninstall_controller() -> None:
    global CONTROLLER
    CONTROLLER = None


def controller() -> Optional["ChoiceController"]:
    return CONTROLLER


def set_sanitizer_factory(
        factory: Optional[Callable[[], "Sanitizer"]]) -> None:
    """Override the sanitizer class instantiated per sanitized run —
    AmberCheck installs a tracing subclass that additionally logs the
    access/lock event stream its dependence analysis needs."""
    global _SANITIZER_FACTORY
    _SANITIZER_FACTORY = factory


def make_sanitizer() -> "Sanitizer":
    """Build the sanitizer for one run (factory override or default)."""
    if _SANITIZER_FACTORY is not None:
        return _SANITIZER_FACTORY()
    from repro.analyze.sanitizer import Sanitizer

    return Sanitizer()


def auto_enabled() -> bool:
    """True inside a :func:`sanitize_runs` block: every
    :class:`repro.sim.program.AmberProgram` run sanitizes itself."""
    return _AUTO


def collect(sanitizer: "Sanitizer") -> None:
    """Hand a finished run's sanitizer to the enclosing
    :func:`sanitize_runs` block (no-op outside one)."""
    if _COLLECTED is not None:
        _COLLECTED.append(sanitizer)


@contextmanager
def sanitize_runs() -> Iterator[List["Sanitizer"]]:
    """Sanitize every simulated program run in the block.

    Yields a list that accumulates the :class:`Sanitizer` of each run
    started inside the block — the mechanism behind the CLI's
    ``--sanitize`` flag, which cannot thread a parameter through every
    workload entry point.
    """
    global _AUTO, _COLLECTED
    saved = (_AUTO, _COLLECTED)
    collected: List["Sanitizer"] = []
    _AUTO, _COLLECTED = True, collected
    try:
        yield collected
    finally:
        _AUTO, _COLLECTED = saved
