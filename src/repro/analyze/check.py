"""AmberCheck: stateless model checking over the deterministic simulator.

The discrete-event engine is PRNG-free and breaks ties by schedule
order, so a simulated run is a pure function of its *scheduling
choices*: which ready thread each dispatch picks, whether a thread is
preempted at the end of a compute segment, which waiter a released
lock/monitor (or a signalled condvar) is handed to, and the order in
which same-time network messages are delivered.  AmberCheck records
that choice sequence with a :class:`ChoiceController` (installed
through the paper's user-replaceable-scheduler hook — see
:class:`repro.sim.scheduler.ControlledScheduler` — plus the kernel's
preemption hook, the sync objects' hand-off hook, and the network's
delivery-order override) and re-executes the program with forced
prefixes until every relevantly-distinct schedule has been visited or
the budget runs out.

Exploration modes
-----------------
``dpor=False``
    Exhaustive enumeration of the choice tree: every alternative at
    every multi-option choice point.  Complete, and feasible for the
    bundled fixtures.
``dpor=True`` (default)
    Dynamic partial-order reduction in the Flanagan–Godefroid style:
    after each run, the event log collected by a tracing sanitizer
    (field accesses and lock acquisitions, with the vector clocks of
    :mod:`repro.analyze.hb`) yields the pairs of *dependent* transitions
    of different threads; for each such pair a backtracking point is
    scheduled — the latest choice point before the earlier transition at
    which the later transition's thread could have been scheduled
    instead.  Field-access pairs already ordered by happens-before are
    skipped (any reordering must go through reordering the
    synchronization operations themselves, which are always treated as
    dependent).  ``prune=True`` additionally drops runs whose
    Mazurkiewicz trace (per-cell order of dependent accesses) matches an
    already-expanded schedule — sleep-set-style equivalence pruning.

Every explored schedule runs under the PR 4 sanitizer, so the report
contains AMBSAN findings *and* terminal-state divergences: deadlock,
uncaught exception, or differing final program value.  Each finding
carries a minimal choice trace replayable bit-identically with
:func:`run_schedule` (CLI: ``repro check --replay``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analyze import runtime as _rt
from repro.analyze.sanitizer import Sanitizer
from repro.errors import DeadlockError
from repro.obs.metrics import MetricsRegistry

#: Default schedule-count budget (the acceptance bound of the issue).
DEFAULT_MAX_SCHEDULES = 2000
#: Default bound on choice points considered for branching per run.
DEFAULT_MAX_DEPTH = 400


# ---------------------------------------------------------------------------
# Choice recording and forcing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChoicePoint:
    """One recorded scheduling decision.

    ``kind`` is ``pick`` (ready-queue dispatch), ``preempt`` (end of a
    compute segment with other threads runnable), ``handoff`` (which
    waiter a released lock/monitor or signalled condvar wakes), or
    ``deliver`` (order of simultaneously-arriving network messages).
    ``options`` are stable human-readable labels (thread names, message
    tags); ``chosen`` indexes into them.  ``queued`` is extra context
    for ``preempt`` points: the ready queue at the moment of the
    decision, which the DPOR analysis uses to compute backtracking
    prefixes."""

    kind: str
    where: str
    options: Tuple[str, ...]
    chosen: int
    queued: Tuple[str, ...] = ()


class ChoiceController:
    """Records every scheduling decision of one run, forcing a prefix.

    Positions beyond the forced prefix take the default (index 0),
    which reproduces the stock FIFO schedule — so an empty prefix is
    exactly the unchecked run.  A forced index that no longer fits the
    options at its position (possible only if the program itself is
    nondeterministic) marks the run ``diverged``.
    """

    def __init__(self, forced: Sequence[int] = ()) -> None:
        self.forced = list(forced)
        self.points: List[ChoicePoint] = []
        self.diverged = False
        #: Delivery-order override state (see ``schedule_delivery``).
        self._pending: List[Tuple[str, Callable[[], None]]] = []
        self._drain_scheduled = False
        self._delivery_seq = 0

    def choose(self, kind: str, where: str, options: Sequence[str],
               queued: Sequence[str] = ()) -> int:
        position = len(self.points)
        if position < len(self.forced):
            chosen = self.forced[position]
            if not 0 <= chosen < len(options):
                self.diverged = True
                chosen = 0
        else:
            chosen = self._default(kind, where, options)
        self.points.append(ChoicePoint(kind, where, tuple(options),
                                       chosen, tuple(queued)))
        return chosen

    def _default(self, kind: str, where: str,
                 options: Sequence[str]) -> int:
        return 0

    def choices(self) -> List[int]:
        return [point.chosen for point in self.points]

    # -- network delivery-order override --------------------------------

    def schedule_delivery(self, sim: Any, delivery_ns: int, src: int,
                          dst: int,
                          deliver: Callable[[], None]) -> None:
        """Route one message delivery through the controller.

        Arrivals are collected per engine timestamp; when more than one
        message matures at the same instant, their delivery order
        becomes a ``deliver`` choice point instead of engine schedule
        order."""
        self._delivery_seq += 1
        label = f"msg{self._delivery_seq}:{src}->{dst}"

        def drain() -> None:
            self._drain_scheduled = False
            while self._pending:
                labels = tuple(tag for tag, _ in self._pending)
                index = self.choose("deliver", "net", labels)
                _, fn = self._pending.pop(index)
                fn()

        def mature() -> None:
            self._pending.append((label, deliver))
            if not self._drain_scheduled:
                # Scheduled *now*, at the shared timestamp: the engine
                # runs it after every same-time arrival already queued,
                # so the drain sees them all at once.
                self._drain_scheduled = True
                sim.schedule_at_ns(sim.now_ns, drain)

        sim.schedule_at_ns(delivery_ns, mature)


class RandomController(ChoiceController):
    """Uniform random scheduling — used to measure how rarely a bug
    manifests without systematic exploration."""

    def __init__(self, rng: random.Random) -> None:
        super().__init__()
        self._rng = rng

    def _default(self, kind: str, where: str,
                 options: Sequence[str]) -> int:
        if len(options) <= 1:
            return 0
        return self._rng.randrange(len(options))


# ---------------------------------------------------------------------------
# Event collection (dependence + equivalence analysis input)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Event:
    """One observed transition: a field access or a lock acquisition."""

    #: Choice points recorded when the event fired — the event belongs
    #: to the execution segment after choice point ``position - 1``.
    position: int
    thread: str
    tid: int
    kind: str             # "field" | "lock" | "step"
    target: int           # object vaddr
    field: str
    is_write: bool
    #: The acting thread's own clock component (its epoch).
    own: int
    #: Vector-clock snapshot of the acting thread at the event.
    clock: Tuple[Tuple[int, int], ...]


class _TracingSanitizer(Sanitizer):
    """The stock sanitizer plus an event log for the DPOR analysis."""

    def __init__(self, controller: ChoiceController) -> None:
        super().__init__()
        self._controller = controller
        self.events: List[_Event] = []

    def step_begin(self, thread: Any, obj: Any, method: str) -> None:
        # The sanitizer's per-object step pseudo-lock joins clocks in
        # *observed* step order, so same-object segments always look
        # happens-before ordered.  That order is itself a scheduling
        # outcome: record each step as a dependent event (like a lock
        # acquisition) so DPOR explores its reorderings.
        vaddr = obj.__dict__.get("_vaddr")
        if vaddr is None:
            vaddr = -id(obj)
        vc = self._vc(thread.tid, thread)
        self.events.append(_Event(
            position=len(self._controller.points),
            thread=thread.name, tid=thread.tid, kind="step",
            target=vaddr, field="", is_write=True,
            own=vc.get(thread.tid), clock=tuple(sorted(vc.items()))))
        super().step_begin(thread, obj, method)

    def _record_access(self, obj: Any, obj_dict: Dict[str, Any],
                       vaddr: int, name: str, is_write: bool,
                       frame: Any) -> None:
        thread = self._current[-1][0]
        vc = self._vcs[thread.tid]
        self.events.append(_Event(
            position=len(self._controller.points),
            thread=thread.name, tid=thread.tid, kind="field",
            target=vaddr, field=name, is_write=is_write,
            own=vc.get(thread.tid), clock=tuple(sorted(vc.items()))))
        super()._record_access(obj, obj_dict, vaddr, name, is_write,
                               frame)

    def on_acquire(self, sync_obj: Any, thread: Any,
                   order: bool = True) -> None:
        vc = self._vc(thread.tid, thread)
        self.events.append(_Event(
            position=len(self._controller.points),
            thread=thread.name, tid=thread.tid, kind="lock",
            target=sync_obj.vaddr, field="", is_write=True,
            own=vc.get(thread.tid), clock=tuple(sorted(vc.items()))))
        super().on_acquire(sync_obj, thread, order=order)


# ---------------------------------------------------------------------------
# One controlled run
# ---------------------------------------------------------------------------


@dataclass
class RunOutcome:
    """Everything observed in one controlled schedule."""

    forced: Tuple[int, ...]
    choices: List[int]
    points: List[ChoicePoint]
    #: "ok" | "deadlock" | "exception:<Type>"
    status: str
    detail: str
    value_repr: str
    #: ``(signature, rendered)`` per sanitizer finding.
    findings: List[Tuple[str, str]]
    events: List[_Event]
    diverged: bool
    elapsed_us: float

    def fingerprint(self) -> str:
        """Terminal-state identity: status plus final program value."""
        return f"{self.status}|{self.value_repr}"

    def signatures(self) -> List[str]:
        return sorted(signature for signature, _ in self.findings)

    def witness(self) -> List[int]:
        """The minimal replayable choice trace: recorded choices with
        the all-default tail trimmed (defaults are re-derived on
        replay)."""
        trimmed = list(self.choices)
        while trimmed and trimmed[-1] == 0:
            trimmed.pop()
        return trimmed


def run_schedule(program_fn: Callable[[], Any],
                 forced: Sequence[int] = (),
                 controller: Optional[ChoiceController] = None
                 ) -> RunOutcome:
    """Run ``program_fn`` once under a controller, sanitized.

    ``program_fn`` runs a bounded simulated program (e.g. one of the
    :mod:`repro.analyze.fixtures`) with ``sanitize=True`` and returns
    its :class:`~repro.sim.program.ProgramResult`.  This is also the
    replay primitive: passing a previously recorded choice trace as
    ``forced`` reproduces that schedule bit-identically.
    """
    if controller is None:
        controller = ChoiceController(forced)
    sanitizers: List[_TracingSanitizer] = []

    def factory() -> Sanitizer:
        sanitizer = _TracingSanitizer(controller)
        sanitizers.append(sanitizer)
        return sanitizer

    _rt.install_controller(controller)
    _rt.set_sanitizer_factory(factory)
    status, detail, value_repr, elapsed_us = "ok", "", "", 0.0
    try:
        result = program_fn()
        value_repr = repr(getattr(result, "value", None))
        elapsed_us = float(getattr(result, "elapsed_us", 0.0))
    except DeadlockError as exc:
        status, detail = "deadlock", str(exc)
    except Exception as exc:  # terminal divergence, not a checker bug
        status = f"exception:{type(exc).__name__}"
        detail = str(exc)
    finally:
        _rt.set_sanitizer_factory(None)
        _rt.uninstall_controller()

    findings: List[Tuple[str, str]] = []
    events: List[_Event] = []
    if sanitizers:
        report = sanitizers[-1].report()
        findings = [(f.signature(), f.render()) for f in report.findings]
        events = sanitizers[-1].events
    return RunOutcome(
        forced=tuple(forced), choices=controller.choices(),
        points=list(controller.points), status=status, detail=detail,
        value_repr=value_repr, findings=findings, events=events,
        diverged=controller.diverged, elapsed_us=elapsed_us)


def sample_random_schedules(program_fn: Callable[[], Any], n: int,
                            seed: int = 0) -> List[RunOutcome]:
    """Run ``n`` uniformly random schedules (for manifestation-rate
    measurements: how rarely does the bug show without AmberCheck?)."""
    outcomes = []
    for index in range(n):
        rng = random.Random(seed * 1_000_003 + index)
        outcomes.append(run_schedule(
            program_fn, controller=RandomController(rng)))
    return outcomes


# ---------------------------------------------------------------------------
# Dependence analysis
# ---------------------------------------------------------------------------


def _covers(clock: Tuple[Tuple[int, int], ...], event: _Event) -> bool:
    """Does ``clock`` (a later event's VC snapshot) cover ``event``?"""
    for tid, component in clock:
        if tid == event.tid:
            return component >= event.own
    return event.own <= 0


def _dependent_pairs(
        events: List[_Event]) -> List[Tuple[_Event, _Event]]:
    """For each event, its most recent prior dependent event by another
    thread (the pair DPOR tries to reorder).  Lock acquisitions of the
    same lock and execution steps of the same object are always
    dependent; field-access pairs already ordered by happens-before are
    skipped — reordering them requires reordering the synchronization
    that ordered them, which the lock/step pairs cover.
    """
    by_cell: Dict[Tuple[str, int, str], List[_Event]] = {}
    pairs: List[Tuple[_Event, _Event]] = []
    for event in events:
        cell = (event.kind, event.target, event.field)
        prior = by_cell.get(cell)
        if prior is not None:
            for earlier in reversed(prior):
                if earlier.tid == event.tid:
                    break  # own earlier access dominates the cell
                if not (earlier.is_write or event.is_write):
                    continue
                if event.kind in ("lock", "step") or \
                        not _covers(event.clock, earlier):
                    pairs.append((earlier, event))
                break
        by_cell.setdefault(cell, []).append(event)
    return pairs


def _equivalence_key(outcome: RunOutcome) -> Tuple[Any, ...]:
    """Mazurkiewicz-trace identity: per-thread event sequences plus the
    per-cell order of accesses.  Equal keys => the runs are reorderings
    of independent transitions only, so exploring one suffices."""
    per_thread: Dict[str, List[Tuple[str, int, str, bool]]] = {}
    per_cell: Dict[Tuple[str, int, str], List[Tuple[int, bool]]] = {}
    for event in outcome.events:
        per_thread.setdefault(event.thread, []).append(
            (event.kind, event.target, event.field, event.is_write))
        per_cell.setdefault(
            (event.kind, event.target, event.field), []).append(
            (event.tid, event.is_write))
    return (
        outcome.status, outcome.value_repr,
        tuple(sorted((name, tuple(seq))
                     for name, seq in per_thread.items())),
        tuple(sorted((cell, tuple(seq))
                     for cell, seq in per_cell.items())))


def _backtrack_prefix(outcome: RunOutcome, pos_limit: int,
                      target: str, max_depth: int
                      ) -> Optional[Tuple[int, ...]]:
    """The forced prefix that schedules thread ``target`` at the latest
    choice point before ``pos_limit`` where it was runnable but not
    chosen — DPOR's backtracking point for a dependent pair."""
    choices = outcome.choices
    for index in range(min(pos_limit, max_depth) - 1, -1, -1):
        point = outcome.points[index]
        if point.kind == "pick" and target in point.options:
            alternative = point.options.index(target)
            if alternative == choices[index]:
                continue  # target ran here already; look earlier
            return tuple(choices[:index]) + (alternative,)
        if point.kind == "preempt" and choices[index] == 0 \
                and target in point.queued:
            # Force the preemption, then pick the target at the
            # dispatch that deterministically follows (queue order is
            # preserved; the preempted thread is appended last).
            return (tuple(choices[:index])
                    + (1, point.queued.index(target)))
    return None


# ---------------------------------------------------------------------------
# Findings and report
# ---------------------------------------------------------------------------


@dataclass
class CheckFinding:
    """One defect AmberCheck surfaced, with a replayable witness."""

    #: "sanitizer" | "deadlock" | "exception" | "divergence"
    kind: str
    signature: str
    message: str
    #: Minimal choice trace reproducing the finding (``--replay``).
    trace: List[int]
    #: Index of the schedule that first exhibited it (0 = default run).
    schedule: int

    def render(self) -> str:
        head = f"[{self.kind}] {self.signature}"
        trace = ",".join(str(choice) for choice in self.trace) or "0"
        lines = [head, f"    schedule #{self.schedule}, "
                       f"replay with --replay {trace}"]
        for line in self.message.splitlines():
            lines.append(f"    {line}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "signature": self.signature,
                "message": self.message, "trace": self.trace,
                "schedule": self.schedule}


@dataclass
class CheckReport:
    """Outcome of one exploration."""

    name: str
    schedules: int
    exhausted: bool
    dpor: bool
    prune: bool
    budget: int
    max_depth: int
    findings: List[CheckFinding]
    #: fingerprint -> number of explored schedules ending in it.
    fingerprints: Dict[str, int]
    baseline_fingerprint: str
    baseline_signatures: List[str]
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def signatures(self) -> List[str]:
        return sorted(finding.signature for finding in self.findings)

    def render(self) -> str:
        mode = "DPOR" if self.dpor else "exhaustive"
        bound = ("exhausted" if self.exhausted
                 else f"budget ({self.budget} schedules / depth "
                      f"{self.max_depth})")
        lines = [f"AmberCheck: {self.name} — {self.schedules} "
                 f"schedule(s), {mode}, {bound}"]
        if not self.findings:
            lines.append("  clean: no findings in any explored "
                         "schedule")
        for finding in self.findings:
            lines.append("  " + finding.render().replace("\n", "\n  "))
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "ok": self.ok,
            "schedules": self.schedules, "exhausted": self.exhausted,
            "dpor": self.dpor, "prune": self.prune,
            "budget": self.budget, "max_depth": self.max_depth,
            "findings": [finding.as_dict()
                         for finding in self.findings],
            "fingerprints": dict(self.fingerprints),
            "baseline_fingerprint": self.baseline_fingerprint,
            "baseline_signatures": list(self.baseline_signatures),
            "counters": dict(self.counters),
        }


# ---------------------------------------------------------------------------
# The explorer
# ---------------------------------------------------------------------------


def check_program(program_fn: Callable[[], Any], *,
                  name: str = "program",
                  budget: int = DEFAULT_MAX_SCHEDULES,
                  max_depth: int = DEFAULT_MAX_DEPTH,
                  dpor: bool = True,
                  prune: bool = True,
                  metrics: Optional[MetricsRegistry] = None,
                  progress: Optional[Callable[[str], None]] = None
                  ) -> CheckReport:
    """Explore the schedules of a bounded program.

    Stateless search: a work list of forced choice prefixes, starting
    from the empty prefix (the default schedule).  Each run is executed
    under the sanitizer; alternatives are scheduled per the chosen mode
    (exhaustive or DPOR, see the module docstring), bounded by
    ``budget`` runs and ``max_depth`` choice points per run.  Progress
    counters land in ``metrics`` (a
    :class:`repro.obs.metrics.MetricsRegistry`).
    """
    metrics = metrics if metrics is not None else MetricsRegistry()
    frontier: List[Tuple[int, ...]] = [()]
    scheduled: Set[Tuple[int, ...]] = {()}
    seen_keys: Set[Tuple[Any, ...]] = set()
    findings: Dict[str, CheckFinding] = {}
    fingerprints: Dict[str, int] = {}
    fingerprint_witness: Dict[str, Tuple[List[int], int]] = {}
    schedules = 0
    truncated = False
    baseline_fingerprint = ""
    baseline_signatures: List[str] = []

    def note(kind: str, signature: str, message: str,
             outcome: RunOutcome) -> None:
        if signature in findings:
            return
        findings[signature] = CheckFinding(
            kind=kind, signature=signature, message=message,
            trace=outcome.witness(), schedule=schedules - 1)
        metrics.inc("check_findings")

    while frontier:
        if schedules >= budget:
            truncated = True
            break
        forced = frontier.pop()
        outcome = run_schedule(program_fn, forced)
        schedules += 1
        metrics.inc("check_schedules")
        metrics.observe("check_choice_points", len(outcome.points))
        if progress is not None and schedules % 100 == 0:
            metrics.inc("check_progress_reports")
            progress(f"{name}: {schedules} schedules explored, "
                     f"{len(findings)} finding(s), "
                     f"{len(frontier)} pending")
        if outcome.diverged:
            metrics.inc("check_replay_divergence")
            continue
        if schedules == 1:
            baseline_fingerprint = outcome.fingerprint()
            baseline_signatures = outcome.signatures()

        fingerprint = outcome.fingerprint()
        fingerprints[fingerprint] = fingerprints.get(fingerprint, 0) + 1
        fingerprint_witness.setdefault(
            fingerprint, (outcome.witness(), schedules - 1))
        for signature, rendered in outcome.findings:
            note("sanitizer", signature, rendered, outcome)
        if outcome.status == "deadlock":
            metrics.inc("check_deadlocks")
            note("deadlock", "DEADLOCK", outcome.detail, outcome)
        elif outcome.status.startswith("exception:"):
            metrics.inc("check_exceptions")
            note("exception", outcome.status, outcome.detail, outcome)

        if prune:
            key = _equivalence_key(outcome)
            if key in seen_keys:
                metrics.inc("check_pruned")
                continue
            seen_keys.add(key)

        if len(outcome.points) > max_depth:
            metrics.inc("check_depth_capped")
            truncated = True
        expansions = (_dpor_expansions(outcome, max_depth, metrics)
                      if dpor
                      else _exhaustive_expansions(outcome, max_depth))
        for prefix in expansions:
            if prefix not in scheduled:
                scheduled.add(prefix)
                frontier.append(prefix)

    # Terminal-state divergence: more than one distinct completed-run
    # fingerprint means the program's result depends on the schedule.
    ok_prints = sorted(fp for fp in fingerprints
                       if fp.startswith("ok|"))
    if len(ok_prints) > 1:
        metrics.inc("check_divergences")
        summary = "; ".join(
            f"{fp!r} x{fingerprints[fp]}" for fp in ok_prints)
        witness, schedule = fingerprint_witness[ok_prints[1]]
        findings.setdefault("STATE-DIVERGENCE", CheckFinding(
            kind="divergence", signature="STATE-DIVERGENCE",
            message=(f"final state depends on the schedule: "
                     f"{summary}"),
            trace=witness, schedule=schedule))

    report = CheckReport(
        name=name, schedules=schedules,
        exhausted=not frontier and not truncated,
        dpor=dpor, prune=prune, budget=budget, max_depth=max_depth,
        findings=sorted(findings.values(),
                        key=lambda f: (f.schedule, f.signature)),
        fingerprints=fingerprints,
        baseline_fingerprint=baseline_fingerprint,
        baseline_signatures=baseline_signatures,
        counters={counter_name: int(counter.value) for
                  counter_name, counter in metrics.counters.items()
                  if counter_name.startswith("check_")})
    return report


def _exhaustive_expansions(outcome: RunOutcome, max_depth: int
                           ) -> List[Tuple[int, ...]]:
    """Every untried alternative at every choice point at or beyond the
    forced prefix (earlier points belong to already-scheduled
    subtrees)."""
    prefixes: List[Tuple[int, ...]] = []
    choices = outcome.choices
    for index in range(len(outcome.forced),
                       min(len(outcome.points), max_depth)):
        point = outcome.points[index]
        for alternative in range(len(point.options)):
            if alternative != choices[index]:
                prefixes.append(tuple(choices[:index]) + (alternative,))
    return prefixes


def _dpor_expansions(outcome: RunOutcome, max_depth: int,
                     metrics: MetricsRegistry
                     ) -> List[Tuple[int, ...]]:
    """Backtracking points for this run (see module docstring)."""
    prefixes: List[Tuple[int, ...]] = []
    choices = outcome.choices
    # Hand-off and delivery orders branch whenever contended: their
    # alternatives are few and reordering them is exactly the kind of
    # schedule dependence the vector clocks cannot rule out.
    for index in range(min(len(outcome.points), max_depth)):
        point = outcome.points[index]
        if point.kind in ("handoff", "deliver") \
                and len(point.options) > 1:
            for alternative in range(len(point.options)):
                if alternative != choices[index]:
                    prefixes.append(tuple(choices[:index])
                                    + (alternative,))
    for earlier, later in _dependent_pairs(outcome.events):
        prefix = _backtrack_prefix(outcome, earlier.position,
                                   later.thread, max_depth)
        if prefix is not None:
            metrics.inc("check_backtracks")
            prefixes.append(prefix)
    return prefixes
