"""AmberFlow: whole-program object-flow and locality analysis.

Amber's whole bet is that programmers place and move objects well.
Until now the repo could only discover *bad* placement dynamically —
PR 1's metrics and PR 4's sanitizer report the remote-invocation bill
after a run has paid it.  AmberFlow reasons about the same structure
statically, before a single event runs:

* :mod:`repro.analyze.flow.model` — an interprocedural scan over Amber
  program sources (apps, examples, fixtures) that builds a call graph
  and a lightweight object-flow/alias model from the AST: which classes
  exist, what their fields reference, which thread bodies touch which
  object classes, which invocations cross an object boundary (and how
  often, via loop-weight estimates), and which references escape into
  forked threads or moved objects.
* :mod:`repro.analyze.flow.hints` — derives a deterministic
  :class:`PlacementHints` artifact from the model: spread candidates
  (thread-anchor classes instantiated per node), co-location groups
  (index-adjacent chatty instances, exclusive cross-class pairs),
  replicate candidates (read-mostly classes invoked from many threads),
  MoveTo candidates (invocation-concentrated mutable objects), and hub
  classes that should stay put while threads come to them.  The
  hint-driven policy in :mod:`repro.placement.policies` consumes the
  artifact at run time.
* :mod:`repro.analyze.flow.diagnostics` — static diagnostics
  AMB201-AMB205 over the model (remote invoke in a hot loop, write to a
  statically-replicated class, lock held across a remote invoke, moved
  object leaving its reference graph behind, mutable value escaping
  into forked threads), suppressible with the existing
  ``# repro: noqa`` machinery.
* :mod:`repro.analyze.flow.scenario` — the ``repro flow``
  cross-validation suite: replays the bundled apps in the simulator and
  scores the static predictions against the dynamic metrics
  (``invoke_remote_us``, access-log affinity, object locations),
  reporting per-hint precision and an ablation of hint-driven vs.
  static-default placement.

The first analysis in the repo that changes runtime behavior rather
than only reporting on it: hints feed placement, placement feeds the
kernel.  See ``docs/ANALYSIS.md`` (AmberFlow section).
"""

from __future__ import annotations

from repro.analyze.flow.diagnostics import FLOW_RULES, flow_diagnostics
from repro.analyze.flow.hints import (
    Hint,
    PlacementHints,
    derive_hints,
    load_hints,
)
from repro.analyze.flow.model import FlowModel, scan_paths, scan_sources
from repro.analyze.flow.scenario import FlowReport, run_flow_scenarios

__all__ = [
    "FLOW_RULES",
    "FlowModel",
    "FlowReport",
    "Hint",
    "PlacementHints",
    "derive_hints",
    "flow_diagnostics",
    "load_hints",
    "run_flow_scenarios",
    "scan_paths",
    "scan_sources",
]
