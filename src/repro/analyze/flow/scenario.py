"""The ``repro flow`` cross-validation suite.

Static analysis that nobody checks against reality drifts into
fiction.  This suite closes the loop in both directions:

* **static self-consistency** — the analysis is deterministic
  (byte-identical hints artifact and findings fingerprint across
  reruns) and the AMB201-AMB205 catalog fires exactly as specified on
  the bundled fixtures (including noqa suppression);
* **expectation gate** — the finding set over the bundled apps and
  examples matches a committed expectation file, so a hint or
  diagnostic change shows up in review as a diff, not as silence;
* **prediction scoring** — the bundled apps run in the simulator under
  the knowledge-free static default (``SpreadPlacement``) and under
  ``HintedPlacement`` driven by the derived artifact, and every
  checkable hint is confirmed or refuted against the dynamic record
  (object locations, the kernel's access log, invocation metrics);
  per-hint verdicts and overall precision are reported;
* **ablation** — hint-driven placement must *reduce the remote
  invocation share* (``invoke_remote_us`` count fraction) versus the
  static default on the apps where locality is on the table (SOR's
  neighbor chatter, matmul's shared B), with the numbers printed.

Custom ``--paths`` runs keep only the static scenarios: the dynamic
ones are meaningful only for the bundled apps.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analyze.flow.diagnostics import flow_diagnostics
from repro.analyze.flow.fixtures import EXPECTED_RULES, FLOW_FIXTURES
from repro.analyze.flow.hints import PlacementHints, derive_hints
from repro.analyze.flow.model import FlowModel, scan_sources
from repro.analyze.lint import LintFinding
from repro.placement.policies import (
    HintedPlacement,
    PlacementPolicy,
    SpreadPlacement,
)

#: What ``repro flow`` analyzes when no paths are given.
DEFAULT_PATHS = ("src/repro/apps", "examples")

#: Schema tag of the committed findings expectation file.
EXPECT_SCHEMA = "amberflow-findings/1"

#: Minimum fraction of checkable hints that must be dynamically
#: confirmed.
PRECISION_FLOOR = 0.75


# ---------------------------------------------------------------------------
# Report plumbing
# ---------------------------------------------------------------------------


@dataclass
class FlowOutcome:
    """One scenario's verdict."""

    name: str
    ok: bool
    details: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "ok": self.ok,
                "details": list(self.details)}

    def render(self) -> str:
        mark = "ok " if self.ok else "FAIL"
        lines = [f"[{mark}] {self.name}"]
        lines.extend(f"       {line}" for line in self.details)
        return "\n".join(lines)


@dataclass
class FlowReport:
    """Everything ``repro flow`` produced in one run."""

    fast: bool
    paths: List[str]
    outcomes: List[FlowOutcome]
    hints: PlacementHints
    findings: List[LintFinding]

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def findings_payload(self) -> Dict[str, Any]:
        return findings_payload(self.findings)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "fast": self.fast,
            "paths": list(self.paths),
            "ok": self.ok,
            "outcomes": [o.as_dict() for o in self.outcomes],
            "hints": self.hints.as_dict(),
            "findings": self.findings_payload(),
            "findings_fingerprint": findings_fingerprint(self.findings),
        }

    def render(self) -> str:
        mode = "fast" if self.fast else "full"
        lines = [f"AmberFlow cross-validation ({mode}) over "
                 f"{', '.join(self.paths)}",
                 f"  hints: {len(self.hints.hints)} "
                 f"(fingerprint {self.hints.fingerprint[:16]})",
                 f"  findings: {len(self.findings)} "
                 f"(fingerprint "
                 f"{findings_fingerprint(self.findings)[:16]})",
                 ""]
        lines.extend(outcome.render() for outcome in self.outcomes)
        verdict = "PASS" if self.ok else "FAIL"
        passed = sum(1 for o in self.outcomes if o.ok)
        lines.append("")
        lines.append(f"{verdict}: {passed}/{len(self.outcomes)} "
                     f"scenarios")
        return "\n".join(lines)


def findings_payload(findings: Sequence[LintFinding]) -> Dict[str, Any]:
    """The committed-expectation-file shape of a finding set."""
    return {
        "schema": EXPECT_SCHEMA,
        "findings": [
            {"path": f.path, "line": f.line, "rule": f.rule,
             "message": f.message}
            for f in findings
        ],
    }


def findings_fingerprint(findings: Sequence[LintFinding]) -> str:
    blob = json.dumps(
        [[f.path, f.line, f.rule, f.message] for f in findings],
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Source collection
# ---------------------------------------------------------------------------


def _norm_path(path: Path) -> str:
    """Repo-relative forward-slash path when possible (the expectation
    file must not depend on where the checkout lives)."""
    try:
        rel = path.resolve().relative_to(Path.cwd().resolve())
        return rel.as_posix()
    except ValueError:
        return path.as_posix()


def collect_sources(paths: Sequence[str]) -> List[Tuple[str, str]]:
    sources: List[Tuple[str, str]] = []
    for entry in paths:
        root = Path(entry)
        files = ([root] if root.is_file()
                 else sorted(root.rglob("*.py")))
        for file in files:
            sources.append((_norm_path(file), file.read_text()))
    return sources


# ---------------------------------------------------------------------------
# Static scenarios
# ---------------------------------------------------------------------------


def _determinism(sources: List[Tuple[str, str]],
                 hints: PlacementHints,
                 findings: List[LintFinding]) -> FlowOutcome:
    """Scan everything a second time: the artifacts must be
    byte-identical."""
    model2 = scan_sources(sources)
    hints2 = derive_hints(model2)
    findings2 = flow_diagnostics(model2, dict(sources))
    same_hints = hints.to_json() == hints2.to_json()
    fp1 = findings_fingerprint(findings)
    fp2 = findings_fingerprint(findings2)
    details = [
        f"hints json: {'identical' if same_hints else 'DIFFERS'} "
        f"({hints.fingerprint[:16]})",
        f"findings fingerprint: "
        f"{'identical' if fp1 == fp2 else 'DIFFERS'} ({fp1[:16]})",
    ]
    return FlowOutcome("deterministic-analysis",
                       same_hints and fp1 == fp2, details)


def _fixture_catalog() -> FlowOutcome:
    """Every AMB2xx rule fires on its fixture, its noqa twin is
    silent, and the genuinely-fixed twin is clean."""
    details: List[str] = []
    ok = True
    for name in sorted(FLOW_FIXTURES):
        source = FLOW_FIXTURES[name]
        path = f"<fixture:{name}>"
        model = scan_sources([(path, source)])
        findings = flow_diagnostics(model, {path: source})
        got = {f.rule for f in findings}
        want = set(EXPECTED_RULES[name])
        good = got == want
        ok = ok and good
        show_got = ",".join(sorted(got)) or "-"
        show_want = ",".join(sorted(want)) or "-"
        suffix = "" if good else f"  MISMATCH (want {show_want})"
        details.append(f"{name}: {show_got}{suffix}")
    return FlowOutcome("diagnostics-catalog", ok, details)


def _hint_content(hints: PlacementHints) -> FlowOutcome:
    """The derived artifact must contain the hints the bundled apps
    were built to produce."""
    checks = [
        ("MatrixB replicate", "MatrixB" in hints.replicate_classes()),
        ("SorSection spread/block",
         hints.spread_strategy("SorSection") == "block"),
        ("QueensWorker spread",
         hints.kind_of("QueensWorker") == "spread"),
        ("RowBlockWorker spread",
         hints.kind_of("RowBlockWorker") == "spread"),
        ("WorkPool hub", hints.kind_of("WorkPool") == "hub"),
        ("SorMaster hub", hints.kind_of("SorMaster") == "hub"),
    ]
    details = [f"{name}: {'yes' if good else 'MISSING'}"
               for name, good in checks]
    return FlowOutcome("hints-content",
                       all(good for _, good in checks), details)


def _expectation(findings: List[LintFinding],
                 expect_path: str) -> FlowOutcome:
    """The finding set must match the committed expectation file."""
    try:
        raw = json.loads(Path(expect_path).read_text())
    except (OSError, ValueError) as exc:
        return FlowOutcome("expected-findings", False,
                           [f"cannot read {expect_path}: {exc}",
                            "regenerate with: repro flow "
                            f"--write-expect {expect_path}"])
    if not isinstance(raw, dict) or raw.get("schema") != EXPECT_SCHEMA:
        return FlowOutcome("expected-findings", False,
                           [f"{expect_path}: wrong schema "
                            f"(want {EXPECT_SCHEMA})"])
    want = [(str(f.get("path")), int(f.get("line", 0)),
             str(f.get("rule")), str(f.get("message")))
            for f in raw.get("findings", [])]
    got = [(f.path, f.line, f.rule, f.message) for f in findings]
    missing = [w for w in want if w not in got]
    unexpected = [g for g in got if g not in want]
    details = [f"expected {len(want)}, got {len(got)}"]
    for label, items in (("missing", missing),
                         ("unexpected", unexpected)):
        for path, line, rule, _ in items[:5]:
            details.append(f"{label}: {path}:{line} {rule}")
        if len(items) > 5:
            details.append(f"{label}: ... {len(items) - 5} more")
    ok = not missing and not unexpected
    if not ok:
        details.append(f"regenerate with: repro flow --write-expect "
                       f"{expect_path}")
    return FlowOutcome("expected-findings", ok, details)


# ---------------------------------------------------------------------------
# Dynamic scenarios: run the apps, score the hints
# ---------------------------------------------------------------------------


@dataclass
class _ClassDyn:
    """Per-class dynamic record of one run."""

    instances: int = 0
    locations: Set[int] = field(default_factory=set)
    origins: Set[int] = field(default_factory=set)
    total: int = 0
    foreign: int = 0


def _dynamics(cluster: Any) -> Dict[str, _ClassDyn]:
    out: Dict[str, _ClassDyn] = {}
    for vaddr, obj in cluster.objects.items():
        cls = type(obj).__name__
        dyn = out.setdefault(cls, _ClassDyn())
        dyn.instances += 1
        loc = getattr(obj, "_location", None)
        if loc is not None:
            dyn.locations.add(loc)
        for origin, count in cluster.access_log.get(vaddr,
                                                    {}).items():
            dyn.origins.add(origin)
            dyn.total += count
            if loc is not None and origin != loc:
                dyn.foreign += count
    return out


def _merge_dynamics(parts: Sequence[Dict[str, _ClassDyn]]
                    ) -> Dict[str, _ClassDyn]:
    merged: Dict[str, _ClassDyn] = {}
    for part in parts:
        for cls, dyn in part.items():
            into = merged.setdefault(cls, _ClassDyn())
            into.instances += dyn.instances
            into.locations |= dyn.locations
            into.origins |= dyn.origins
            into.total += dyn.total
            into.foreign += dyn.foreign
    return merged


def _remote_share(cluster: Any) -> Tuple[float, int, int]:
    remote = cluster.metrics.histograms.get("invoke_remote_us")
    local = cluster.metrics.histograms.get("invoke_local_us")
    r = remote.count if remote is not None else 0
    lo = local.count if local is not None else 0
    total = r + lo
    return ((r / total) if total else 0.0, r, lo)


@dataclass
class _AppRun:
    """One app executed under both policies."""

    name: str
    nodes: int
    static_cluster: Any
    hinted_cluster: Any


def _run_apps(hints: PlacementHints, fast: bool) -> List[_AppRun]:
    from repro.apps.matmul import run_matmul
    from repro.apps.queens import run_amber_queens
    from repro.apps.sor.amber_sor import run_amber_sor
    from repro.apps.sor.grid import SorProblem

    if fast:
        problem = SorProblem(rows=24, cols=64, iterations=3)
        mm_size, queens_n = 24, 6
    else:
        problem = SorProblem(rows=48, cols=96, iterations=4)
        mm_size, queens_n = 48, 8

    def policies(nodes: int) -> Tuple[PlacementPolicy,
                                      PlacementPolicy]:
        static = SpreadPlacement(nodes)
        hinted = HintedPlacement(hints, nodes,
                                 fallback=SpreadPlacement(nodes))
        return static, hinted

    runs: List[_AppRun] = []

    nodes = 2
    static, hinted = policies(nodes)
    runs.append(_AppRun(
        "sor", nodes,
        run_amber_sor(problem, nodes=nodes, cpus_per_node=2,
                      placement=static).cluster,
        run_amber_sor(problem, nodes=nodes, cpus_per_node=2,
                      placement=hinted).cluster))

    nodes = 4
    static, hinted = policies(nodes)
    runs.append(_AppRun(
        "matmul", nodes,
        run_matmul(m=mm_size, k=mm_size, n=mm_size, nodes=nodes,
                   cpus_per_node=2, placement=static).cluster,
        run_matmul(m=mm_size, k=mm_size, n=mm_size, nodes=nodes,
                   cpus_per_node=2, placement=hinted).cluster))

    nodes = 2
    static, hinted = policies(nodes)
    runs.append(_AppRun(
        "queens", nodes,
        run_amber_queens(n=queens_n, nodes=nodes, cpus_per_node=2,
                         placement=static).cluster,
        run_amber_queens(n=queens_n, nodes=nodes, cpus_per_node=2,
                         placement=hinted).cluster))

    return runs


def _precision(hints: PlacementHints,
               runs: List[_AppRun]) -> FlowOutcome:
    """Score every checkable hint against the dynamic record."""
    static_dyn = _merge_dynamics([_dynamics(r.static_cluster)
                                  for r in runs])
    hinted_dyn = _merge_dynamics([_dynamics(r.hinted_cluster)
                                  for r in runs])
    details: List[str] = []
    checked = confirmed = 0
    for hint in hints.hints:
        sdyn = static_dyn.get(hint.cls)
        hdyn = hinted_dyn.get(hint.cls)
        if sdyn is None or hdyn is None:
            continue    # class not exercised by the bundled apps
        verdict: Optional[bool] = None
        evidence = ""
        if hint.kind == "replicate":
            # Read from several nodes while unreplicated: replication
            # would have made those reads local.
            verdict = len(sdyn.origins) >= 2
            evidence = (f"static run reads from "
                        f"{len(sdyn.origins)} node(s)")
        elif hint.kind == "spread":
            verdict = len(hdyn.locations) >= 2
            evidence = (f"hinted run places {hdyn.instances} "
                        f"instance(s) on {len(hdyn.locations)} "
                        f"node(s)")
        elif hint.kind == "colocate":
            verdict = hdyn.foreign < sdyn.foreign
            evidence = (f"foreign accesses {sdyn.foreign} "
                        f"(round-robin) -> {hdyn.foreign} (block)")
        elif hint.kind == "hub":
            verdict = len(sdyn.origins) >= 2
            evidence = (f"invoked from {len(sdyn.origins)} node(s) "
                        f"while staying put")
        if verdict is None:
            continue    # move hints have no bundled-app instance
        checked += 1
        confirmed += 1 if verdict else 0
        mark = "confirmed" if verdict else "REFUTED"
        details.append(f"{hint.kind} {hint.cls}: {mark} "
                       f"({evidence})")
    precision = (confirmed / checked) if checked else 0.0
    details.append(f"precision: {confirmed}/{checked} "
                   f"= {precision:.2f} (floor {PRECISION_FLOOR})")
    ok = checked >= 4 and precision >= PRECISION_FLOOR
    return FlowOutcome("hint-precision", ok, details)


def _ablation(run: _AppRun) -> FlowOutcome:
    """Hint-driven placement must reduce the remote-invocation share
    versus the static default."""
    s_share, s_remote, s_local = _remote_share(run.static_cluster)
    h_share, h_remote, h_local = _remote_share(run.hinted_cluster)
    details = [
        f"static default: {s_remote} remote / {s_local} local "
        f"invocations (remote share {s_share:.3f})",
        f"hint-driven:    {h_remote} remote / {h_local} local "
        f"invocations (remote share {h_share:.3f})",
        f"reduction: {s_share - h_share:+.3f}",
    ]
    return FlowOutcome(f"ablation-{run.name}", h_share < s_share,
                       details)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def run_flow_scenarios(fast: bool = True,
                       paths: Optional[Sequence[str]] = None,
                       expect: Optional[str] = None) -> FlowReport:
    """Run the suite.  ``paths`` overrides what gets analyzed (which
    also skips the app-specific dynamic scenarios); ``expect`` enables
    the expectation gate against a committed findings file."""
    bundled = paths is None
    scan = (list(paths) if paths is not None
            else [p for p in DEFAULT_PATHS if Path(p).exists()])
    sources = collect_sources(scan)
    model: FlowModel = scan_sources(sources)
    hints = derive_hints(model)
    findings = flow_diagnostics(model, dict(sources))

    outcomes = [
        _determinism(sources, hints, findings),
        _fixture_catalog(),
    ]
    if expect is not None:
        outcomes.append(_expectation(findings, expect))
    if bundled:
        outcomes.append(_hint_content(hints))
        runs = _run_apps(hints, fast)
        outcomes.append(_precision(hints, runs))
        for run in runs:
            if run.name in ("sor", "matmul"):
                outcomes.append(_ablation(run))

    return FlowReport(fast=fast, paths=scan, outcomes=outcomes,
                      hints=hints, findings=findings)
