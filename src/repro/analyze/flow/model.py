"""The object-flow model: AST -> classes, fields, call graph, escapes.

The model is deliberately *lightweight*: it resolves receivers through
four alias sources that cover the Amber idioms —

* parameter annotations (``def run(self, ctx, pool: WorkPool)``),
* constructor results (``x = yield New(Cls, ...)``, ``x = Cls(...)``),
* ``self`` fields, typed by ``__init__`` annotations
  (``self.master: Optional[SorMaster] = None``), by assignment from an
  annotated parameter (``self.pool = pool``), or by container literals
  of known classes (``self.neighbors = [left, right]``),
* local containers grown by ``append`` of known-class expressions
  (``sections.append((yield New(SorSection, ...)))``) and consumed by
  ``for``-loops (plain or ``enumerate``).

Unresolvable receivers stay unknown and are skipped by every consumer —
the analysis is conservative by construction.  Loop weights multiply
statically-resolvable ``range`` trip counts; unknown loops contribute a
fixed factor so "inside a loop" still outranks "straight-line".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Weight multiplier for loops whose trip count is not a constant.
UNKNOWN_TRIPS = 4
#: Cap on accumulated loop weight (keeps products bounded).
MAX_WEIGHT = 10_000

#: Method names that mutate their receiver container in place.
_MUTATORS = {
    "append", "appendleft", "extend", "insert", "pop", "popleft",
    "remove", "clear", "add", "discard", "update", "setdefault",
    "sort", "reverse", "push",
}

#: Acquire-like call -> release-like partner (lock-held tracking).
_ACQUIRES = {
    "acquire": "release",
    "enter": "exit",
    "acquire_read": "release_read",
    "acquire_write": "release_write",
}
_RELEASES = {v: k for k, v in _ACQUIRES.items()}

#: Mutable plain-Python constructors (AMB205 escape sources).
_MUTABLE_CTORS = {"list", "dict", "set", "deque", "defaultdict",
                  "bytearray", "Counter", "OrderedDict"}


# ---------------------------------------------------------------------------
# Sites
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InvokeSite:
    """One ``Invoke``/``FastInvoke`` (or live method call) in the AST."""

    path: str
    line: int
    #: Qualified caller, e.g. ``SorSection.edger`` or ``run_x.main``.
    caller: str
    #: Class owning the calling code ("" for module-level functions).
    caller_class: str
    #: Source text of the receiver expression.
    receiver: str
    #: Resolved receiver class, or None when unknown.
    receiver_class: Optional[str]
    method: str
    loop_depth: int
    #: Estimated executions relative to one caller activation.
    weight: int
    #: True for ``FastInvoke`` (co-residency enforced by the kernel).
    fast: bool
    #: Locks (receiver source text) held at the call site.
    held: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ForkSite:
    """One ``Fork``/``NewThread`` thread creation."""

    path: str
    line: int
    caller: str
    target: str
    target_class: Optional[str]
    method: str
    loop_depth: int
    weight: int
    #: Names of mutable plain-Python locals passed as arguments.
    mutable_args: Tuple[str, ...] = ()


@dataclass(frozen=True)
class NewSite:
    """One ``New(Cls, ...)`` object creation."""

    path: str
    line: int
    caller: str
    cls: str
    loop_depth: int
    #: Constant trip count of the enclosing loops, when resolvable.
    trips: Optional[int]
    #: Whether the program already passes ``on_node=``.
    placed: bool


@dataclass(frozen=True)
class MoveSite:
    """One ``MoveTo(target, node)``."""

    path: str
    line: int
    caller: str
    target: str
    target_class: Optional[str]


@dataclass(frozen=True)
class EscapeSite:
    """A mutable plain-Python local crossing into forked threads."""

    path: str
    line: int
    caller: str
    name: str
    #: "refork" (same value into a second thread) or "mutate-after-fork".
    kind: str
    first_line: int


@dataclass
class MethodModel:
    """Field effects of one method body."""

    cls: str
    name: str
    path: str
    line: int
    #: self fields read (attribute loads).
    reads: Set[str] = field(default_factory=set)
    #: self field -> first line written (stores, augments, mutator calls).
    writes: Dict[str, int] = field(default_factory=dict)


@dataclass
class ClassModel:
    """One class defined in the scanned sources."""

    name: str
    path: str
    line: int
    bases: Tuple[str, ...]
    methods: Dict[str, MethodModel] = field(default_factory=dict)
    #: field -> referenced class (object-valued fields).
    field_classes: Dict[str, str] = field(default_factory=dict)
    #: field -> element class (container-of-objects fields).
    field_elems: Dict[str, str] = field(default_factory=dict)

    def writer_methods(self) -> List[MethodModel]:
        """Methods (excluding ``__init__``) that write self state."""
        return [m for name, m in sorted(self.methods.items())
                if name != "__init__" and m.writes]

    @property
    def read_only(self) -> bool:
        """No method outside ``__init__`` writes self state."""
        return not self.writer_methods()


@dataclass
class FlowModel:
    """Everything the hint derivation and diagnostics consume."""

    paths: List[str] = field(default_factory=list)
    classes: Dict[str, ClassModel] = field(default_factory=dict)
    invokes: List[InvokeSite] = field(default_factory=list)
    forks: List[ForkSite] = field(default_factory=list)
    news: List[NewSite] = field(default_factory=list)
    moves: List[MoveSite] = field(default_factory=list)
    escapes: List[EscapeSite] = field(default_factory=list)
    #: Classes some instance of which gets ``SetImmutable``.
    immutable_classes: Set[str] = field(default_factory=set)
    #: (target class, to class) pairs seen in ``Attach``.
    attach_pairs: Set[Tuple[str, str]] = field(default_factory=set)
    #: Files that failed to parse: path -> message.
    errors: Dict[str, str] = field(default_factory=dict)

    # -- derived views ---------------------------------------------------

    def fork_target_classes(self) -> Set[str]:
        return {f.target_class for f in self.forks
                if f.target_class is not None}

    def thread_roots(self) -> Set[Tuple[str, str]]:
        """(class, method) bodies that run as threads."""
        return {(f.target_class, f.method) for f in self.forks
                if f.target_class is not None}

    def spread_classes(self) -> Set[str]:
        """Fork-target classes instantiated per node / in a loop."""
        multi: Set[str] = set()
        seen: Dict[str, int] = {}
        for site in self.news:
            seen[site.cls] = seen.get(site.cls, 0) + 1
            if site.loop_depth >= 1 or seen[site.cls] >= 2:
                multi.add(site.cls)
        return multi & self.fork_target_classes()

    def invoked_by(self) -> Dict[str, Dict[str, int]]:
        """receiver class -> caller class -> total weight.

        Only boundary-crossing invocations count: a different class, or
        the same class through a non-``self`` receiver (a *different
        instance*, e.g. a SOR section poking its neighbor)."""
        table: Dict[str, Dict[str, int]] = {}
        for site in self.invokes:
            if site.receiver_class is None or not site.caller_class:
                continue
            if site.receiver == "self":
                continue
            row = table.setdefault(site.receiver_class, {})
            row[site.caller_class] = (row.get(site.caller_class, 0)
                                      + site.weight)
        return table

    def self_affine_classes(self) -> Set[str]:
        """Classes whose instances invoke *other instances of the same
        class* (chatty index-adjacent pairs, e.g. SOR sections)."""
        return {cls for cls, row in self.invoked_by().items()
                if row.get(cls, 0) > 0}

    def instantiated_classes(self) -> Set[str]:
        return {site.cls for site in self.news}


# ---------------------------------------------------------------------------
# Scanning
# ---------------------------------------------------------------------------


def scan_sources(sources: Sequence[Tuple[str, str]]) -> FlowModel:
    """Build the model from ``(path, source)`` pairs.

    Two passes: the first collects class names (so annotations resolve
    only to classes defined in the scanned program), the second builds
    fields, sites, and escapes."""
    model = FlowModel(paths=[path for path, _ in sources])
    trees: List[Tuple[str, ast.Module]] = []
    for path, text in sources:
        try:
            tree = ast.parse(text, filename=path)
        except SyntaxError as exc:
            model.errors[path] = f"syntax error: {exc.msg}"
            continue
        trees.append((path, tree))
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                model.classes[node.name] = ClassModel(
                    name=node.name, path=path, line=node.lineno,
                    bases=tuple(_base_name(b) for b in node.bases))
    for path, tree in trees:
        _scan_module(model, path, tree)
    return model


def scan_paths(paths: Iterable[str]) -> FlowModel:
    """Build the model from every ``.py`` file under the given
    files/directories (sorted, so the model is deterministic)."""
    sources: List[Tuple[str, str]] = []
    errors: Dict[str, str] = {}
    for entry in paths:
        root = Path(entry)
        files = ([root] if root.is_file()
                 else sorted(root.rglob("*.py")))
        for file in files:
            try:
                sources.append((str(file), file.read_text()))
            except OSError as exc:
                errors[str(file)] = f"unreadable: {exc}"
    model = scan_sources(sources)
    model.errors.update(errors)
    return model


def _base_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ast.dump(node)[:32]


def _scan_module(model: FlowModel, path: str, tree: ast.Module) -> None:
    # Class field typing first, so method walks can resolve self.field.
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name in model.classes:
            _scan_class_fields(model, model.classes[node.name], node)
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            cls = model.classes.get(stmt.name)
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                    _Walker(model, path, cls, sub,
                            env=_param_env(model, sub)).run()
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _Walker(model, path, None, stmt,
                    env=_param_env(model, stmt)).run()


def _param_env(model: FlowModel, fn: ast.AST) -> Dict[str, str]:
    """name -> class for annotated parameters naming known classes."""
    env: Dict[str, str] = {}
    args = getattr(fn, "args", None)
    if args is None:
        return env
    for arg in (args.posonlyargs + args.args + args.kwonlyargs):
        cls = _ann_class(model, arg.annotation)
        if cls is not None:
            env[arg.arg] = cls[0]
    return env


def _ann_class(model: FlowModel, ann: Optional[ast.AST]
               ) -> Optional[Tuple[str, bool]]:
    """Resolve an annotation to ``(class, is_container)`` when it names
    a known class — through ``Optional[...]``, string forward
    references, and one level of ``List``/``Sequence``/``Tuple``."""
    if ann is None:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            ann = ast.parse(ann.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(ann, ast.Name):
        return (ann.id, False) if ann.id in model.classes else None
    if isinstance(ann, ast.Subscript):
        head = ann.value
        name = head.id if isinstance(head, ast.Name) else (
            head.attr if isinstance(head, ast.Attribute) else "")
        inner = ann.slice
        if name == "Optional":
            return _ann_class(model, inner)
        if name == "Union":
            if isinstance(inner, ast.Tuple):
                for elt in inner.elts:
                    got = _ann_class(model, elt)
                    if got is not None:
                        return got
            return None
        if name in ("List", "list", "Sequence", "Tuple", "tuple",
                    "Deque", "deque"):
            elems = (inner.elts if isinstance(inner, ast.Tuple)
                     else [inner])
            for elt in elems:
                got = _ann_class(model, elt)
                if got is not None:
                    return (got[0], True)
            return None
    return None


def _scan_class_fields(model: FlowModel, cls: ClassModel,
                       node: ast.ClassDef) -> None:
    """Type ``self.field`` from ``__init__``-and-friends bodies."""
    for fn in node.body:
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = _param_env(model, fn)
        for sub in ast.walk(fn):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            ann: Optional[ast.expr] = None
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target, value = sub.targets[0], sub.value
            elif isinstance(sub, ast.AnnAssign):
                target, value, ann = sub.target, sub.value, sub.annotation
            if not _is_self_field(target):
                continue
            assert isinstance(target, ast.Attribute)
            name = target.attr
            resolved = _ann_class(model, ann)
            if resolved is not None:
                _record_field(cls, name, resolved)
                continue
            if value is None:
                continue
            got = _class_of_value(model, value, params, {}, cls.name)
            if got is not None:
                _record_field(cls, name, got)


def _record_field(cls: ClassModel, name: str,
                  resolved: Tuple[str, bool]) -> None:
    ref, container = resolved
    if container:
        cls.field_elems.setdefault(name, ref)
    else:
        cls.field_classes.setdefault(name, ref)


def _is_self_field(node: Optional[ast.expr]) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self")


def _class_of_value(model: FlowModel, value: ast.expr,
                    env: Dict[str, str], elems: Dict[str, str],
                    own_class: str) -> Optional[Tuple[str, bool]]:
    """Resolve the class an expression evaluates to, if known."""
    if isinstance(value, ast.Await):
        return _class_of_value(model, value.value, env, elems, own_class)
    if isinstance(value, ast.Yield) and value.value is not None:
        return _class_of_value(model, value.value, env, elems, own_class)
    if isinstance(value, ast.Name):
        if value.id == "self" and own_class:
            return (own_class, False)
        got = env.get(value.id)
        if got is not None:
            return (got, False)
        elem = elems.get(value.id)
        if elem is not None:
            return (elem, True)
        return None
    if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
        classes = set()
        for elt in value.elts:
            if isinstance(elt, ast.Constant) and elt.value is None:
                continue
            got = _class_of_value(model, elt, env, elems, own_class)
            if got is None or got[1]:
                return None
            classes.add(got[0])
        if len(classes) == 1:
            return (classes.pop(), True)
        return None
    if isinstance(value, ast.Call):
        fn = value.func
        if isinstance(fn, ast.Name):
            if fn.id in model.classes:
                return (fn.id, False)
            if fn.id == "New" and value.args:
                first = value.args[0]
                if isinstance(first, ast.Name) and \
                        first.id in model.classes:
                    return (first.id, False)
        return None
    if isinstance(value, ast.Subscript):
        base = value.value
        if isinstance(base, ast.Name):
            elem = elems.get(base.id)
            if elem is not None:
                return (elem, False)
        if _is_self_field(base) and own_class:
            cm = model.classes.get(own_class)
            if cm is not None:
                assert isinstance(base, ast.Attribute)
                felem = cm.field_elems.get(base.attr)
                if felem is not None:
                    return (felem, False)
        return None
    if isinstance(value, ast.Attribute) and _is_self_field(value):
        if own_class:
            cm = model.classes.get(own_class)
            if cm is not None:
                assert isinstance(value, ast.Attribute)
                ref = cm.field_classes.get(value.attr)
                if ref is not None:
                    return (ref, False)
        return None
    return None


# ---------------------------------------------------------------------------
# The per-function walker
# ---------------------------------------------------------------------------


class _Walker:
    """Statement-order walk of one function body collecting sites."""

    def __init__(self, model: FlowModel, path: str,
                 cls: Optional[ClassModel],
                 fn: ast.AST, env: Dict[str, str],
                 qualprefix: str = "") -> None:
        self.model = model
        self.path = path
        self.cls = cls
        self.fn = fn
        self.env = dict(env)
        #: local container name -> element class.
        self.elems: Dict[str, str] = {}
        #: mutable plain-Python locals: name -> definition line.
        self.mutables: Dict[str, int] = {}
        #: mutable name -> first Fork line it escaped into.
        self.escaped: Dict[str, int] = {}
        #: held lock receivers (source text), statement order.
        self.held: List[str] = []
        fn_name = getattr(fn, "name", "<fn>")
        base = cls.name if cls is not None else qualprefix
        self.qual = f"{base}.{fn_name}" if base else fn_name
        self.loop_depth = 0
        self.weight = 1
        self.method: Optional[MethodModel] = None
        if cls is not None:
            self.method = MethodModel(cls=cls.name, name=fn_name,
                                      path=path, line=fn.lineno)
            cls.methods[fn_name] = self.method

    # -- entry -----------------------------------------------------------

    def run(self) -> None:
        self._block(list(getattr(self.fn, "body", [])))

    def _block(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    # -- statements ------------------------------------------------------

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function (the run_x/main idiom): walk it with a
            # copy of the current environment as its closure.
            _Walker(self.model, self.path, self.cls, stmt,
                    env={**self.env, **_param_env(self.model, stmt)},
                    qualprefix=self.qual).run()
            return
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, ast.For):
            self._exprs([stmt.iter])
            self._bind_for_target(stmt)
            mult = _range_len(stmt.iter)
            self._looped(stmt.body, mult)
            self._block(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._exprs([stmt.test])
            self._looped(stmt.body, None)
            self._block(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self._exprs([stmt.test])
            self._block(stmt.body)
            self._block(stmt.orelse)
            return
        if isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
            return
        if isinstance(stmt, ast.With):
            self._exprs([item.context_expr for item in stmt.items])
            self._block(stmt.body)
            return
        # Simple statement: classify its calls, then apply bindings.
        self._exprs(_stmt_exprs(stmt))
        self._bindings(stmt)

    def _looped(self, body: List[ast.stmt], trips: Optional[int]) -> None:
        mult = trips if trips is not None and trips > 0 else UNKNOWN_TRIPS
        self.loop_depth += 1
        prev = self.weight
        self.weight = min(MAX_WEIGHT, self.weight * mult)
        self._block(body)
        self.weight = prev
        self.loop_depth -= 1

    def _bind_for_target(self, stmt: ast.For) -> None:
        """``for x in xs`` / ``for i, x in enumerate(xs)`` binding."""
        elem: Optional[str] = None
        it = stmt.iter
        if isinstance(it, ast.Call) and isinstance(it.func, ast.Name) \
                and it.func.id == "enumerate" and it.args:
            inner = it.args[0]
            if isinstance(inner, ast.Name):
                elem = self.elems.get(inner.id)
            if isinstance(stmt.target, ast.Tuple) and \
                    len(stmt.target.elts) == 2 and \
                    isinstance(stmt.target.elts[1], ast.Name):
                name = stmt.target.elts[1].id
                self._retire(name)
                if elem is not None:
                    self.env[name] = elem
            return
        if isinstance(it, ast.Name):
            elem = self.elems.get(it.id)
        elif isinstance(it, ast.Attribute) and _is_self_field(it) and \
                self.cls is not None:
            elem = self.cls.field_elems.get(it.attr)
        if isinstance(stmt.target, ast.Name):
            self._retire(stmt.target.id)
            if elem is not None:
                self.env[stmt.target.id] = elem

    def _retire(self, name: str) -> None:
        self.env.pop(name, None)
        self.elems.pop(name, None)
        self.mutables.pop(name, None)
        self.escaped.pop(name, None)

    # -- bindings --------------------------------------------------------

    def _bindings(self, stmt: ast.stmt) -> None:
        pairs: List[Tuple[ast.expr, Optional[ast.expr]]] = []
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                pairs.append((target, stmt.value))
        elif isinstance(stmt, ast.AnnAssign):
            pairs.append((stmt.target, stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            self._note_write(stmt.target, stmt.lineno)
            return
        for target, value in pairs:
            if isinstance(target, ast.Name):
                self._bind_name(target.id, value, stmt)
            elif _is_self_field(target):
                self._note_write(target, stmt.lineno)
            elif isinstance(target, ast.Subscript):
                self._note_write(target.value, stmt.lineno)
                if isinstance(target.value, ast.Name):
                    self._note_mutation(target.value.id, stmt.lineno)

    def _bind_name(self, name: str, value: Optional[ast.expr],
                   stmt: ast.stmt) -> None:
        self._retire(name)
        if value is None:
            return
        got = _class_of_value(self.model, value, self.env, self.elems,
                              self.cls.name if self.cls else "")
        if got is not None:
            cls, container = got
            if container:
                self.elems[name] = cls
            else:
                self.env[name] = cls
            return
        if _is_mutable_value(value):
            self.mutables[name] = stmt.lineno

    def _note_write(self, target: ast.expr, line: int) -> None:
        """Record a self-field write (stores, augments, item stores)."""
        node = target
        while isinstance(node, ast.Subscript):
            node = node.value
        if _is_self_field(node) and self.method is not None:
            assert isinstance(node, ast.Attribute)
            self.method.writes.setdefault(node.attr, line)

    def _note_mutation(self, name: str, line: int) -> None:
        """A mutable local changed; flag it if it already escaped."""
        first = self.escaped.get(name)
        if first is not None:
            self.model.escapes.append(EscapeSite(
                path=self.path, line=line, caller=self.qual, name=name,
                kind="mutate-after-fork", first_line=first))
            del self.escaped[name]

    # -- expressions -----------------------------------------------------

    def _exprs(self, exprs: Sequence[Optional[ast.expr]]) -> None:
        for expr in exprs:
            if expr is None:
                continue
            for node in ast.walk(expr):
                if isinstance(node, ast.Call):
                    self._call(node)
                elif isinstance(node, ast.Attribute) and \
                        _is_self_field(node) and \
                        isinstance(node.ctx, ast.Load) and \
                        self.method is not None:
                    self.method.reads.add(node.attr)

    def _call(self, call: ast.Call) -> None:
        name = call.func.id if isinstance(call.func, ast.Name) else None
        if name in ("Invoke", "FastInvoke") and len(call.args) >= 2:
            self._invoke(call, fast=(name == "FastInvoke"))
            return
        if name in ("Fork", "NewThread") and len(call.args) >= 2:
            self._fork(call)
            return
        if name == "New" and call.args:
            self._new(call)
            return
        if name == "MoveTo" and call.args:
            self.model.moves.append(MoveSite(
                path=self.path, line=call.lineno, caller=self.qual,
                target=_src(call.args[0]),
                target_class=self._receiver_class(call.args[0])))
            return
        if name == "Attach" and len(call.args) >= 2:
            a = self._receiver_class(call.args[0])
            b = self._receiver_class(call.args[1])
            if a is not None and b is not None:
                self.model.attach_pairs.add((a, b))
            return
        if name == "SetImmutable" and call.args:
            cls = self._receiver_class(call.args[0])
            if cls is not None:
                self.model.immutable_classes.add(cls)
            return
        if isinstance(call.func, ast.Attribute):
            self._attr_call(call, call.func)

    def _attr_call(self, call: ast.Call, func: ast.Attribute) -> None:
        method = func.attr
        recv = func.value
        # Lock-held tracking (live idiom and helper objects).
        if method in _ACQUIRES:
            key = _src(recv)
            if key not in self.held:
                self.held.append(key)
            return
        if method in _RELEASES:
            key = _src(recv)
            if key in self.held:
                self.held.remove(key)
            return
        if method in _MUTATORS:
            if _is_self_field(recv) and self.method is not None:
                assert isinstance(recv, ast.Attribute)
                self.method.writes.setdefault(recv.attr, call.lineno)
            elif isinstance(recv, ast.Name):
                self._note_mutation(recv.id, call.lineno)
                if method in ("append", "appendleft", "add") \
                        and call.args:
                    got = _class_of_value(
                        self.model, call.args[0], self.env, self.elems,
                        self.cls.name if self.cls else "")
                    if got is not None and not got[1]:
                        self.elems.setdefault(recv.id, got[0])

    def _invoke(self, call: ast.Call, fast: bool) -> None:
        method = _const_str(call.args[1])
        if method is None:
            return
        recv = call.args[0]
        key = _src(recv)
        # Sim sync idiom: Invoke(lock, "acquire") tracks held state and
        # is not a boundary-crossing data invocation.
        if method in _ACQUIRES:
            if key not in self.held:
                self.held.append(key)
            return
        if method in _RELEASES:
            if key in self.held:
                self.held.remove(key)
            return
        held = tuple(h for h in self.held if h != key)
        self.model.invokes.append(InvokeSite(
            path=self.path, line=call.lineno, caller=self.qual,
            caller_class=self.cls.name if self.cls else "",
            receiver=key, receiver_class=self._receiver_class(recv),
            method=method, loop_depth=self.loop_depth,
            weight=self.weight, fast=fast, held=held))

    def _fork(self, call: ast.Call) -> None:
        method = _const_str(call.args[1])
        if method is None:
            return
        recv = call.args[0]
        mutable: List[str] = []
        for arg in call.args[2:]:
            if isinstance(arg, ast.Name) and arg.id in self.mutables:
                mutable.append(arg.id)
                first = self.escaped.get(arg.id)
                if first is not None:
                    self.model.escapes.append(EscapeSite(
                        path=self.path, line=call.lineno,
                        caller=self.qual, name=arg.id, kind="refork",
                        first_line=first))
                else:
                    self.escaped[arg.id] = call.lineno
        self.model.forks.append(ForkSite(
            path=self.path, line=call.lineno, caller=self.qual,
            target=_src(recv), target_class=self._receiver_class(recv),
            method=method, loop_depth=self.loop_depth,
            weight=self.weight, mutable_args=tuple(mutable)))

    def _new(self, call: ast.Call) -> None:
        first = call.args[0]
        if not (isinstance(first, ast.Name)
                and first.id in self.model.classes):
            return
        trips: Optional[int] = 1
        if self.loop_depth:
            trips = (self.weight
                     if self.weight < MAX_WEIGHT and
                     self.weight % UNKNOWN_TRIPS != 0 else None)
        self.model.news.append(NewSite(
            path=self.path, line=call.lineno, caller=self.qual,
            cls=first.id, loop_depth=self.loop_depth,
            trips=trips if self.loop_depth else 1,
            placed=any(kw.arg == "on_node" for kw in call.keywords)))

    # -- receiver resolution ---------------------------------------------

    def _receiver_class(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Yield) and node.value is not None:
            node = node.value
        if isinstance(node, ast.Name):
            if node.id == "self" and self.cls is not None:
                return self.cls.name
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute) and _is_self_field(node) \
                and self.cls is not None:
            return self.cls.field_classes.get(node.attr)
        if isinstance(node, ast.Subscript):
            base = node.value
            if _is_self_field(base) and self.cls is not None:
                assert isinstance(base, ast.Attribute)
                return self.cls.field_elems.get(base.attr)
            if isinstance(base, ast.Name):
                return self.elems.get(base.id)
        return None


# ---------------------------------------------------------------------------
# Small helpers
# ---------------------------------------------------------------------------


def _stmt_exprs(stmt: ast.stmt) -> List[Optional[ast.expr]]:
    if isinstance(stmt, ast.Assign):
        return [stmt.value]
    if isinstance(stmt, ast.AnnAssign):
        return [stmt.value]
    if isinstance(stmt, ast.AugAssign):
        return [stmt.value]
    if isinstance(stmt, ast.Expr):
        return [stmt.value]
    if isinstance(stmt, ast.Return):
        return [stmt.value]
    if isinstance(stmt, (ast.Raise, ast.Assert, ast.Delete,
                         ast.Import, ast.ImportFrom, ast.Global,
                         ast.Nonlocal, ast.Pass, ast.Break,
                         ast.Continue)):
        return []
    return []


def _const_str(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _src(node: ast.expr) -> str:
    if isinstance(node, ast.Yield) and node.value is not None:
        node = node.value
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on exprs
        return "<expr>"


def _is_mutable_value(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        fn = value.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else "")
        return name in _MUTABLE_CTORS
    return False


def _range_len(node: ast.expr) -> Optional[int]:
    """Trip count of a constant-bound ``range``/``enumerate(range)``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id == "enumerate" and node.args:
        return _range_len(node.args[0])
    if not (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "range"):
        return None
    bounds: List[int] = []
    for arg in node.args:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, int) \
                and not isinstance(arg.value, bool):
            bounds.append(arg.value)
        else:
            return None
    if len(bounds) == 1:
        return max(0, bounds[0])
    if len(bounds) == 2:
        return max(0, bounds[1] - bounds[0])
    if len(bounds) == 3 and bounds[2] != 0:
        step = bounds[2]
        span = (bounds[1] - bounds[0]) if step > 0 \
            else (bounds[0] - bounds[1])
        return max(0, -(-span // abs(step)))
    return None
