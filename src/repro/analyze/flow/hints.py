"""Placement hints derived from the static flow model.

The derivation maps structural facts to placement advice:

* **spread** — a Fork-target class instantiated per node (in a loop or
  repeatedly) wants its instances distributed.  Strategy ``block`` when
  instances of the class invoke *each other* (index-adjacent chatter,
  e.g. SOR sections trading edges: neighbors should share a node);
  ``round-robin`` otherwise.
* **replicate** — a read-mostly class (no method outside ``__init__``
  writes self state) invoked across an object boundary wants
  ``SetImmutable`` + replica fetch instead of remote invocations.
* **hub** — a mutable class invoked from spread threads (or from
  several classes) should stay put and let function shipping bring the
  threads to it; scattering it only adds forwarding.
* **move** — a mutable class with exactly one (non-spread) caller class
  concentrates its invocations there; ``MoveTo`` the instance next to
  its caller.
* **colocate** — self-affine spread classes: adjacent indices should
  land on the same node (this is what ``block`` implements).

The artifact is deterministic: hints are sorted, the fingerprint is a
sha256 over the canonical JSON encoding, and nothing time- or
path-order-dependent enters the payload.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import (Any, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Union)

from repro.analyze.flow.model import FlowModel

#: Schema tag checked by consumers; bump on incompatible change.
HINTS_SCHEMA = "amberflow-hints/1"

_KIND_ORDER = {"spread": 0, "colocate": 1, "replicate": 2,
               "hub": 3, "move": 4}


@dataclass(frozen=True)
class Hint:
    """One piece of placement advice for one class."""

    kind: str
    cls: str
    #: For spread: "block" or "round-robin".
    strategy: str = ""
    #: Partner class (colocate pairs, move destinations).
    with_cls: str = ""
    #: Human-readable justification from the model.
    evidence: str = ""
    #: Total static weight backing the hint (loop-weighted).
    weight: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "cls": self.cls,
            "strategy": self.strategy,
            "with": self.with_cls,
            "evidence": self.evidence,
            "weight": self.weight,
        }

    @staticmethod
    def from_dict(raw: Mapping[str, Any]) -> "Hint":
        return Hint(
            kind=str(raw.get("kind", "")),
            cls=str(raw.get("cls", "")),
            strategy=str(raw.get("strategy", "")),
            with_cls=str(raw.get("with", "")),
            evidence=str(raw.get("evidence", "")),
            weight=int(raw.get("weight", 0)),
        )


@dataclass
class PlacementHints:
    """The deterministic hint artifact consumed by placement policies."""

    schema: str
    sources: List[str]
    hints: List[Hint]

    # -- lookups ---------------------------------------------------------

    def for_class(self, cls: str) -> List[Hint]:
        return [h for h in self.hints if h.cls == cls]

    def kind_of(self, cls: str) -> Optional[str]:
        """Primary placement kind for a class (spread/hub/move wins
        over replicate/colocate annotations)."""
        kinds = {h.kind for h in self.for_class(cls)}
        for kind in ("spread", "hub", "move"):
            if kind in kinds:
                return kind
        for kind in ("replicate", "colocate"):
            if kind in kinds:
                return kind
        return None

    def spread_strategy(self, cls: str) -> Optional[str]:
        for h in self.for_class(cls):
            if h.kind == "spread":
                return h.strategy or "round-robin"
        return None

    def replicate_classes(self) -> List[str]:
        return sorted({h.cls for h in self.hints
                       if h.kind == "replicate"})

    # -- serialization ---------------------------------------------------

    def payload(self) -> Dict[str, Any]:
        """Canonical content, *excluding* the fingerprint."""
        return {
            "schema": self.schema,
            "sources": list(self.sources),
            "hints": [h.as_dict() for h in self.hints],
        }

    @property
    def fingerprint(self) -> str:
        blob = json.dumps(self.payload(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def as_dict(self) -> Dict[str, Any]:
        data = self.payload()
        data["fingerprint"] = self.fingerprint
        return data

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) \
            + "\n"

    @property
    def valid(self) -> bool:
        return self.schema == HINTS_SCHEMA

    @staticmethod
    def from_dict(raw: Mapping[str, Any]) -> "PlacementHints":
        hints_raw = raw.get("hints", [])
        hints = [Hint.from_dict(h) for h in hints_raw
                 if isinstance(h, Mapping)]
        sources = [str(s) for s in raw.get("sources", [])]
        return PlacementHints(schema=str(raw.get("schema", "")),
                              sources=sources, hints=hints)


def load_hints(source: Union[str, Path, Mapping[str, Any]]
               ) -> PlacementHints:
    """Load a hints artifact from a JSON file path or a parsed dict.

    Never raises on bad content — a mangled artifact loads with a wrong
    ``schema`` and fails ``valid``, which consumers treat as stale."""
    if isinstance(source, Mapping):
        return PlacementHints.from_dict(source)
    try:
        raw = json.loads(Path(source).read_text())
    except (OSError, ValueError):
        return PlacementHints(schema="unreadable", sources=[], hints=[])
    if not isinstance(raw, dict):
        return PlacementHints(schema="malformed", sources=[], hints=[])
    return PlacementHints.from_dict(raw)


# ---------------------------------------------------------------------------
# Derivation
# ---------------------------------------------------------------------------


def derive_hints(model: FlowModel,
                 sources: Optional[Sequence[str]] = None,
                 extra_immutable: Iterable[str] = ()
                 ) -> PlacementHints:
    """Derive the deterministic hint set from a flow model.

    ``extra_immutable`` names classes some *other* analysis (AmberElide)
    proved effectively immutable; they are promoted to ``replicate``
    even without observed foreign traffic — immutability alone makes
    replica caching safe.
    """
    hints: List[Hint] = []
    spread = model.spread_classes()
    affine = model.self_affine_classes()
    invoked = model.invoked_by()
    instantiated = model.instantiated_classes()

    for cls in sorted(spread):
        block = cls in affine
        strategy = "block" if block else "round-robin"
        evidence = ("fork-target instantiated per node; "
                    + ("instances invoke peer instances"
                       if block else "no peer-instance chatter"))
        weight = sum(invoked.get(cls, {}).values())
        hints.append(Hint(kind="spread", cls=cls, strategy=strategy,
                          evidence=evidence, weight=weight))
        if block:
            hints.append(Hint(
                kind="colocate", cls=cls, with_cls=cls,
                evidence="index-adjacent instances exchange "
                         "invocations; block placement keeps "
                         "neighbors on one node",
                weight=invoked.get(cls, {}).get(cls, 0)))

    for cls in sorted(instantiated):
        if cls in spread:
            continue
        cm = model.classes.get(cls)
        if cm is None:
            continue
        callers = invoked.get(cls, {})
        foreign = {c: w for c, w in callers.items() if c != cls}
        if not foreign:
            continue
        total = sum(foreign.values())
        if cm.read_only or cls in model.immutable_classes:
            hints.append(Hint(
                kind="replicate", cls=cls,
                evidence="read-mostly (no writer methods outside "
                         "__init__); invoked from "
                         + ", ".join(sorted(foreign)),
                weight=total))
            continue
        writers = ", ".join(m.name for m in cm.writer_methods())
        if len(foreign) >= 2 or any(c in spread for c in foreign):
            hints.append(Hint(
                kind="hub", cls=cls,
                evidence="mutable (writers: " + writers + ") invoked "
                         "from " + ", ".join(sorted(foreign))
                         + "; keep resident, ship threads to it",
                weight=total))
        elif len(foreign) == 1:
            caller = next(iter(foreign))
            hints.append(Hint(
                kind="move", cls=cls, with_cls=caller,
                evidence="mutable (writers: " + writers
                         + ") invoked only by " + caller
                         + "; MoveTo its node",
                weight=total))

    replicated = {h.cls for h in hints if h.kind == "replicate"}
    for cls in sorted(set(extra_immutable)):
        if cls in replicated or cls in spread \
                or cls not in instantiated:
            continue
        callers = {c: w for c, w in invoked.get(cls, {}).items()
                   if c != cls}
        hints.append(Hint(
            kind="replicate", cls=cls,
            evidence="effectively immutable per AmberElide "
                     "(no field writes outside __init__, no foreign "
                     "writes); safe to replicate",
            weight=sum(callers.values())))

    hints.sort(key=lambda h: (_KIND_ORDER.get(h.kind, 9),
                              h.cls, h.with_cls))
    return PlacementHints(
        schema=HINTS_SCHEMA,
        sources=sorted(sources if sources is not None else model.paths),
        hints=hints)
