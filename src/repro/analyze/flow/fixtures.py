"""Source-string fixtures for the AmberFlow diagnostics.

Unlike :mod:`repro.analyze.fixtures` (runnable sanitizer workloads),
these are *analyzed, never executed*: each is a small Amber program
source with a known static verdict.  For every rule there are three
variants: one that must fire, the same program with a
``# repro: noqa[RULE]`` suppression (must come back clean), and a
genuinely clean twin that fixes the hazard instead of silencing it.

``FLOW_FIXTURES`` maps fixture name -> source; ``EXPECTED_RULES`` maps
fixture name -> the rule set that must fire on it (empty for the noqa
and clean variants).  The ``repro flow`` diagnostics-catalog scenario
and the unit tests both consume these tables.
"""

from __future__ import annotations

from typing import Dict, FrozenSet


def _noqa(source: str, needle: str, rule: str) -> str:
    """Append a noqa comment to the first line containing ``needle``."""
    out = []
    done = False
    for line in source.splitlines():
        if not done and needle in line:
            line = f"{line}  # repro: noqa[{rule}]"
            done = True
        out.append(line)
    assert done, f"needle {needle!r} not found"
    return "\n".join(out) + "\n"


# -- AMB201: cross-boundary Invoke inside a loop ---------------------------

AMB201_HOT_LOOP = '''\
class Counter:
    def __init__(self) -> None:
        self.total = 0

    def bump(self, ctx):
        self.total += 1
        yield Compute(1.0)


class Driver:
    def __init__(self, counter: Counter) -> None:
        self.counter = counter

    def run(self, ctx):
        for _ in range(64):
            yield Invoke(self.counter, "bump")


def main(ctx):
    counter = yield New(Counter)
    driver = yield New(Driver, counter, on_node=1)
    t = yield Fork(driver, "run")
    yield Join(t)
'''

AMB201_CLEAN = '''\
class Table:
    def __init__(self, rows) -> None:
        self.rows = rows

    def lookup(self, ctx, i):
        yield Compute(0.5)
        return self.rows[i]


class Reader:
    def __init__(self, table: Table) -> None:
        self.table = table

    def run(self, ctx):
        acc = 0
        for i in range(64):
            acc += yield Invoke(self.table, "lookup", i)
        return acc


def main(ctx):
    table = yield New(Table, (1, 2, 3))
    yield SetImmutable(table)
    reader = yield New(Reader, table, on_node=1)
    t = yield Fork(reader, "run")
    yield Join(t)
'''

# -- AMB202: write to a statically-replicated class ------------------------

AMB202_REPLICA_WRITE = '''\
class Lookup:
    def __init__(self) -> None:
        self.values = {"a": 1}

    def get(self, ctx, key):
        yield Compute(0.1)
        return self.values[key]

    def put(self, ctx, key, val):
        self.values[key] = val
        yield Compute(0.1)


def main(ctx):
    cfg = yield New(Lookup)
    yield SetImmutable(cfg)
    got = yield Invoke(cfg, "get", "a")
    return got
'''

AMB202_CLEAN = '''\
class Lookup:
    def __init__(self) -> None:
        self.values = {"a": 1}

    def get(self, ctx, key):
        yield Compute(0.1)
        return self.values[key]


def main(ctx):
    cfg = yield New(Lookup)
    yield SetImmutable(cfg)
    got = yield Invoke(cfg, "get", "a")
    return got
'''

# -- AMB203: lock held across a cross-boundary Invoke ----------------------

AMB203_LOCKED_INVOKE = '''\
class Store:
    def __init__(self) -> None:
        self.items = []

    def put(self, ctx, item):
        self.items.append(item)
        yield Compute(0.2)


def main(ctx):
    lock = yield New(SpinLock)
    store = yield New(Store, on_node=1)
    yield Invoke(lock, "acquire")
    yield Invoke(store, "put", 1)
    yield Invoke(lock, "release")
'''

AMB203_CLEAN = '''\
class Store:
    def __init__(self) -> None:
        self.items = []

    def put(self, ctx, item):
        self.items.append(item)
        yield Compute(0.2)


def main(ctx):
    lock = yield New(SpinLock)
    store = yield New(Store, on_node=1)
    yield Invoke(store, "put", 1)
    yield Invoke(lock, "acquire")
    yield Compute(1.0)
    yield Invoke(lock, "release")
'''

# -- AMB204: MoveTo leaves the reference graph behind ----------------------

AMB204_STRANDED_MOVE = '''\
class Ledger:
    def __init__(self) -> None:
        self.entries = []

    def add(self, ctx, x):
        self.entries.append(x)
        yield Compute(0.1)


class Agent:
    def __init__(self, ledger: Ledger) -> None:
        self.ledger = ledger

    def run(self, ctx):
        yield Invoke(self.ledger, "add", 1)


def main(ctx):
    ledger = yield New(Ledger)
    agent = yield New(Agent, ledger)
    yield MoveTo(agent, 1)
    t = yield Fork(agent, "run")
    yield Join(t)
'''

AMB204_CLEAN = '''\
class Ledger:
    def __init__(self) -> None:
        self.entries = []

    def add(self, ctx, x):
        self.entries.append(x)
        yield Compute(0.1)


class Agent:
    def __init__(self, ledger: Ledger) -> None:
        self.ledger = ledger

    def run(self, ctx):
        yield Invoke(self.ledger, "add", 1)


def main(ctx):
    ledger = yield New(Ledger)
    agent = yield New(Agent, ledger)
    yield Attach(ledger, agent)
    yield MoveTo(agent, 1)
    t = yield Fork(agent, "run")
    yield Join(t)
'''

# -- AMB205: mutable value escaping into forked threads --------------------

AMB205_SHARED_LIST = '''\
class Worker:
    def __init__(self, n: int) -> None:
        self.n = n

    def run(self, ctx, shared):
        shared.append(self.n)
        yield Compute(1.0)


def main(ctx):
    shared = []
    a = yield New(Worker, 1)
    b = yield New(Worker, 2)
    t1 = yield Fork(a, "run", shared)
    t2 = yield Fork(b, "run", shared)
    yield Join(t1)
    yield Join(t2)
    return shared
'''

AMB205_MUTATE_AFTER = '''\
class Worker:
    def __init__(self, n: int) -> None:
        self.n = n

    def run(self, ctx, shared):
        shared.append(self.n)
        yield Compute(1.0)


def main(ctx):
    shared = []
    a = yield New(Worker, 1)
    t1 = yield Fork(a, "run", shared)
    shared.append(0)
    yield Join(t1)
    return shared
'''

AMB205_CLEAN = '''\
class Worker:
    def __init__(self, n: int) -> None:
        self.n = n

    def run(self, ctx, base):
        yield Compute(1.0)
        return base + self.n


def main(ctx):
    a = yield New(Worker, 1)
    b = yield New(Worker, 2)
    t1 = yield Fork(a, "run", 10)
    t2 = yield Fork(b, "run", 20)
    first = yield Join(t1)
    second = yield Join(t2)
    return (first, second)
'''


FLOW_FIXTURES: Dict[str, str] = {
    "amb201": AMB201_HOT_LOOP,
    "amb201-noqa": _noqa(AMB201_HOT_LOOP,
                         'Invoke(self.counter, "bump")', "AMB201"),
    "amb201-clean": AMB201_CLEAN,
    "amb202": AMB202_REPLICA_WRITE,
    "amb202-noqa": _noqa(AMB202_REPLICA_WRITE,
                         "self.values[key] = val", "AMB202"),
    "amb202-clean": AMB202_CLEAN,
    "amb203": AMB203_LOCKED_INVOKE,
    "amb203-noqa": _noqa(AMB203_LOCKED_INVOKE,
                         'Invoke(store, "put", 1)', "AMB203"),
    "amb203-clean": AMB203_CLEAN,
    "amb204": AMB204_STRANDED_MOVE,
    "amb204-noqa": _noqa(AMB204_STRANDED_MOVE,
                         "MoveTo(agent, 1)", "AMB204"),
    "amb204-clean": AMB204_CLEAN,
    "amb205": AMB205_SHARED_LIST,
    "amb205-noqa": _noqa(AMB205_SHARED_LIST,
                         't2 = yield Fork(b, "run", shared)', "AMB205"),
    "amb205-mutate": AMB205_MUTATE_AFTER,
    "amb205-mutate-noqa": _noqa(AMB205_MUTATE_AFTER,
                                "shared.append(0)", "AMB205"),
    "amb205-clean": AMB205_CLEAN,
}

#: fixture name -> rules that must fire (exactly; empty = clean).
EXPECTED_RULES: Dict[str, FrozenSet[str]] = {
    "amb201": frozenset({"AMB201"}),
    "amb201-noqa": frozenset(),
    "amb201-clean": frozenset(),
    "amb202": frozenset({"AMB202"}),
    "amb202-noqa": frozenset(),
    "amb202-clean": frozenset(),
    "amb203": frozenset({"AMB203"}),
    "amb203-noqa": frozenset(),
    "amb203-clean": frozenset(),
    "amb204": frozenset({"AMB204"}),
    "amb204-noqa": frozenset(),
    "amb204-clean": frozenset(),
    "amb205": frozenset({"AMB205"}),
    "amb205-noqa": frozenset(),
    "amb205-mutate": frozenset({"AMB205"}),
    "amb205-mutate-noqa": frozenset(),
    "amb205-clean": frozenset(),
}
