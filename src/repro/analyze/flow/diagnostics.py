"""Whole-program locality diagnostics AMB201-AMB205.

These run over the interprocedural :class:`FlowModel` rather than a
single function, so they can see what the per-function lint
(AMB101-AMB108) cannot: which invocations cross an object boundary,
which classes got statically replicated, and which references escape
the thread that made them.

==========  ============================================================
AMB201      cross-boundary ``Invoke`` inside a loop — each iteration
            may pay a network round-trip (unless the receiver class is
            replicated or attached to the caller)
AMB202      write to a class that is statically replicated
            (``SetImmutable``) — replicas diverge or the write traps
AMB203      lock held across a cross-boundary ``Invoke`` — a remote
            round-trip silently extends the critical section
AMB204      ``MoveTo`` of an object whose reference fields stay behind
            — the moved object's invocations through them turn remote
AMB205      mutable plain-Python value escaping into forked threads —
            shared structure mutated without any sync object
==========  ============================================================

Findings reuse :class:`repro.analyze.lint.LintFinding` and the
``# repro: noqa[AMB201]`` suppression machinery.  All five rules are
*advisory*: the bundled apps deliberately trip AMB201 (work-pool take
loops, SOR edge exchanges) and ``repro flow`` gates the finding set
against a committed expectation file instead of requiring zero.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.analyze.flow.model import FlowModel, InvokeSite
from repro.analyze.lint import LintFinding, filter_noqa

FLOW_RULES: Dict[str, str] = {
    "AMB201": "cross-boundary Invoke inside a loop",
    "AMB202": "write to a statically-replicated class",
    "AMB203": "lock held across a cross-boundary Invoke",
    "AMB204": "MoveTo leaves the object's reference graph behind",
    "AMB205": "mutable value escapes into forked threads without sync",
}

#: AMB201 only fires on loops expected to run at least this often.
HOT_LOOP_WEIGHT = 2


def _crosses_boundary(model: FlowModel, site: InvokeSite) -> bool:
    """Could this invocation leave the caller's object?"""
    if site.receiver == "self":
        return False
    if site.receiver_class is None:
        return False
    return True


def _attached(model: FlowModel, a: Optional[str],
              b: Optional[str]) -> bool:
    if a is None or b is None or not a or not b:
        return False
    return ((a, b) in model.attach_pairs
            or (b, a) in model.attach_pairs)


def _amb201(model: FlowModel) -> Iterable[LintFinding]:
    for site in model.invokes:
        if site.loop_depth < 1 or site.weight < HOT_LOOP_WEIGHT:
            continue
        if not _crosses_boundary(model, site):
            continue
        if site.receiver_class in model.immutable_classes:
            continue    # replicated: invocations resolve locally
        if _attached(model, site.caller_class, site.receiver_class):
            continue    # co-residency is enforced
        yield LintFinding(
            site.path, site.line, "AMB201",
            f"'{site.receiver}.{site.method}' invoked inside a loop "
            f"(est. x{site.weight}) from {site.caller}; each iteration "
            f"may pay a remote round-trip — consider replication, "
            f"MoveTo, or co-location")


def _amb202(model: FlowModel) -> Iterable[LintFinding]:
    for cls in sorted(model.immutable_classes):
        cm = model.classes.get(cls)
        if cm is None:
            continue
        for method in cm.writer_methods():
            for fld in sorted(method.writes):
                yield LintFinding(
                    method.path, method.writes[fld], "AMB202",
                    f"{cls}.{method.name} writes self.{fld}, but "
                    f"{cls} is statically replicated (SetImmutable); "
                    f"writes after replication diverge or trap")


def _amb203(model: FlowModel) -> Iterable[LintFinding]:
    for site in model.invokes:
        if not site.held:
            continue
        if not _crosses_boundary(model, site):
            continue
        yield LintFinding(
            site.path, site.line, "AMB203",
            f"'{site.receiver}.{site.method}' invoked while holding "
            f"{', '.join(repr(h) for h in site.held)}; a remote "
            f"round-trip extends the critical section across the "
            f"network")


def _amb204(model: FlowModel) -> Iterable[LintFinding]:
    for site in model.moves:
        cls = site.target_class
        if cls is None:
            continue
        cm = model.classes.get(cls)
        if cm is None:
            continue
        stranded = sorted(
            f"{fld}: {ref}"
            for fld, ref in cm.field_classes.items()
            if not _attached(model, cls, ref))
        if not stranded:
            continue
        yield LintFinding(
            site.path, site.line, "AMB204",
            f"MoveTo of '{site.target}' ({cls}) leaves its reference "
            f"graph behind ({'; '.join(stranded)}); invocations "
            f"through those fields turn remote — Attach them or move "
            f"the graph together")


def _amb205(model: FlowModel) -> Iterable[LintFinding]:
    for esc in model.escapes:
        if esc.kind == "refork":
            detail = (f"already passed to a thread forked at line "
                      f"{esc.first_line}; two threads now share it")
        else:
            detail = (f"mutated after escaping into a thread forked "
                      f"at line {esc.first_line}")
        yield LintFinding(
            esc.path, esc.line, "AMB205",
            f"mutable value '{esc.name}' in {esc.caller} {detail} "
            f"without any sync object; wrap it in an Amber object or "
            f"pass immutable snapshots")


def flow_diagnostics(model: FlowModel,
                     sources: Optional[Mapping[str, str]] = None
                     ) -> List[LintFinding]:
    """Run AMB201-AMB205 over a model.

    ``sources`` maps path -> source text and enables ``# repro: noqa``
    suppression; findings for paths without source text pass through
    unfiltered."""
    raw: List[LintFinding] = []
    seen: Set[Tuple[str, int, str, str]] = set()
    for gen in (_amb201, _amb202, _amb203, _amb204, _amb205):
        for finding in gen(model):
            key = (finding.path, finding.line, finding.rule,
                   finding.message)
            if key in seen:
                continue
            seen.add(key)
            raw.append(finding)
    if not sources:
        return sorted(raw, key=lambda f: (f.path, f.line, f.rule))
    by_path: Dict[str, List[LintFinding]] = {}
    for finding in raw:
        by_path.setdefault(finding.path, []).append(finding)
    kept: List[LintFinding] = []
    for path, findings in by_path.items():
        text = sources.get(path)
        if text is None:
            kept.extend(findings)
        else:
            kept.extend(filter_noqa(findings, text))
    return sorted(kept, key=lambda f: (f.path, f.line, f.rule))
