"""AmberSan: the dynamic happens-before sanitizer for simulated runs.

Model
-----
The paper provides **no coherence** for concurrently shared mutable
objects: correctness rests on the section-4 synchronization objects and
on the discipline that ``immutable``-marked objects are never written
after replication.  The simulator executes everything on one OS thread
in deterministic event order, which makes exact happens-before tracking
cheap: we maintain a vector clock per simulated thread, advance it at
every synchronization event, and keep FastTrack-style shadow state (last
write epoch + read epochs) per public field of every tracked
:class:`~repro.sim.objects.SimObject`.

Happens-before edges:

* ``Fork``/``Start``   parent -> child
* ``Join``             child exit -> joiner
* ``Wakeup``           waker -> woken (covers ``CondVar.signal``)
* lock/monitor         release -> subsequent acquire (per object)
* barrier              all arrivals -> all departures (per cycle)
* **operation steps**  the simulator runs each generator segment (and
  each atomic operation) of an object's operations atomically; AmberSan
  mirrors that guarantee as a per-object pseudo-lock around every step.
  An object's *own* operations are therefore ordered on its own fields
  — exactly the atomicity real Amber provides via per-object monitors
  of section 2.2 — while **direct touches of another object's fields**
  get no such edge and must be ordered by real synchronization.

Findings (all deduplicated by site pair, capped, and mirrored into the
run's metrics registry and tracer):

``AMBSAN-RACE``
    Two threads access the same field of a shared mutable object with
    neither ordering edge nor common lock; both sites and the offending
    thread's migration history are reported.
``AMBSAN-IMMUT``
    A write to an object previously marked immutable — after
    replication the replicas silently diverge, the exact hazard the
    paper warns about (section 2.3).
``AMBSAN-RESIDENT``
    A direct read/write of a non-resident object's state.  Real Amber
    would fault here; the simulator's single-instance representation
    happens to make the access "work", which is why it must be flagged.
``AMBSAN-ORDER``
    A cycle in the lock-order graph (potential deadlock), reported even
    when the run did not deadlock.
``AMBSAN-OPAQUE``
    A sanitize-tracked class keeps public state where the class-level
    interposition cannot see it: a public ``__slots__`` entry (reads
    bypass the ``__dict__`` membership check) or a public ``property``
    (values are computed, never stored).  Accesses to such members are
    silently *not* race-checked, so the class is flagged instead of
    being half-covered.

The sanitizer is passive: it never schedules events, charges costs, or
draws randomness, so ``--sanitize`` changes no simulated timestamps.
Field interposition is installed *on the class* only while a sanitizer
is active — unsanitized runs pay nothing.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from types import FrameType
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analyze import runtime as _rt
from repro.analyze.elide import runtime as _ert
from repro.analyze.hb import Epoch, VectorClock
from repro.analyze.lockorder import LockOrderGraph, Site

#: Hard cap on retained findings (dedup usually keeps it tiny).
MAX_FINDINGS = 200


@dataclass(frozen=True)
class AccessSite:
    """Where an access happened: source position, enclosing operation,
    thread, node, and simulated time."""

    file: str
    line: int
    op: str
    thread: str
    node: Optional[int]
    t_us: float

    def __str__(self) -> str:
        name = self.file.rsplit("/", 1)[-1]
        return (f"{name}:{self.line} in {self.op} "
                f"[{self.thread} @node {self.node} t={self.t_us:.1f}us]")

    def stable_key(self) -> str:
        """Seed-independent identity (no timestamps, no node)."""
        name = self.file.rsplit("/", 1)[-1]
        return f"{name}:{self.line}:{self.op}:{self.thread}"


@dataclass
class Finding:
    """One sanitizer diagnostic."""

    rule: str
    obj_cls: str
    obj_vaddr: int
    field: str
    message: str
    site: Optional[AccessSite]
    prior: Optional[AccessSite] = None
    #: Node-hop history of the offending thread: [(node, t_us), ...]
    migrations: Tuple[Tuple[int, float], ...] = ()

    def signature(self) -> str:
        """Seed-stable identity used by determinism checks and CI."""
        sites = sorted(s.stable_key() for s in (self.site, self.prior)
                       if s is not None)
        return "|".join([self.rule, self.obj_cls, self.field] + sites)

    def render(self) -> str:
        lines = [f"{self.rule}: {self.message}"]
        if self.site is not None:
            lines.append(f"    access: {self.site}")
        if self.prior is not None:
            lines.append(f"    racing: {self.prior}")
        if self.migrations:
            hops = " -> ".join(
                f"node {node} (t={t_us:.1f}us)"
                for node, t_us in self.migrations)
            lines.append(f"    thread migration history: {hops}")
        return "\n".join(lines)


class _FieldState:
    """Shadow state of one (object, field) cell."""

    __slots__ = ("write_epoch", "write_site", "read_epochs", "read_sites")

    def __init__(self) -> None:
        self.write_epoch: Optional[Epoch] = None
        self.write_site: Optional[AccessSite] = None
        self.read_epochs: Dict[int, int] = {}
        self.read_sites: Dict[int, AccessSite] = {}


@dataclass
class SanitizerReport:
    """Findings of one sanitized run, renderable and JSON-friendly."""

    findings: List[Finding]
    races: int
    immutable_writes: int
    residency_violations: int
    order_cycles: int
    steps: int
    threads: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def signatures(self) -> List[str]:
        return sorted(f.signature() for f in self.findings)

    def render(self) -> str:
        head = (f"AmberSan: {len(self.findings)} finding(s) over "
                f"{self.threads} thread(s), {self.steps} operation "
                f"step(s)")
        if not self.findings:
            return head + " — clean"
        parts = [head]
        for finding in self.findings:
            parts.append(finding.render())
        return "\n".join(parts)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "races": self.races,
            "immutable_writes": self.immutable_writes,
            "residency_violations": self.residency_violations,
            "order_cycles": self.order_cycles,
            "steps": self.steps,
            "threads": self.threads,
            "signatures": self.signatures(),
        }


class Sanitizer:
    """Observes one simulated run.  Create, pass to
    :class:`repro.sim.program.AmberProgram` (``sanitize=True``) or
    activate via :func:`repro.analyze.runtime.sanitize_runs`, then read
    :meth:`report`."""

    def __init__(self) -> None:
        self.cluster: Any = None
        self.findings: List[Finding] = []
        self.lock_order = LockOrderGraph()
        self.races = 0
        self.immutable_writes = 0
        self.residency_violations = 0
        self.steps = 0
        self._vcs: Dict[int, VectorClock] = {}
        self._sync: Dict[Tuple[str, int], VectorClock] = {}
        self._cells: Dict[Tuple[int, str], _FieldState] = {}
        self._dedup: Set[Tuple[Any, ...]] = set()
        #: Stack of (thread, step-object vaddr, "Cls.method") frames.
        self._current: List[Tuple[Any, int, str]] = []
        self._held: Dict[int, Dict[int, Site]] = {}
        self._migrations: Dict[int, List[Tuple[int, float]]] = {}
        self._busy = False
        #: Per-class cache of opaque public members (slots/properties).
        self._opaque_cache: Dict[type, Tuple[Tuple[str, str], ...]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def bind(self, cluster: Any) -> None:
        """Attach to a cluster and install the field interposition."""
        self.cluster = cluster
        cluster.sanitizer = self
        _install_hooks()

    def unbind(self) -> None:
        _remove_hooks()

    def report(self) -> SanitizerReport:
        findings = list(self.findings)
        cycles = self.lock_order.cycles()
        for cycle in cycles:
            first = cycle.edges[0]
            findings.append(Finding(
                rule="AMBSAN-ORDER",
                obj_cls=first.src_cls,
                obj_vaddr=first.src_vaddr,
                field="-",
                message=cycle.render(),
                site=None))
        return SanitizerReport(
            findings=findings,
            races=self.races,
            immutable_writes=self.immutable_writes,
            residency_violations=self.residency_violations,
            order_cycles=len(cycles),
            steps=self.steps,
            threads=len(self._vcs))

    # ------------------------------------------------------------------
    # Kernel hooks: operation steps
    # ------------------------------------------------------------------

    def step_begin(self, thread: Any, obj: Any, method: str) -> None:
        """A generator segment (or atomic body) of ``obj.method`` starts
        executing on ``thread``.  The per-object step pseudo-lock is
        acquired: join the object's step clock into the thread."""
        vaddr = obj.__dict__.get("_vaddr")
        if vaddr is None:  # unregistered object: untracked
            vaddr = -id(obj)
        self.steps += 1
        if type(obj).SANITIZE_FIELDS:
            self._check_opaque(type(obj), vaddr)
        tid = thread.tid
        vc = self._vc(tid, thread)
        step = self._sync.get(("step", vaddr))
        if step is not None:
            vc.join(step)
        self._current.append(
            (thread, vaddr, f"{type(obj).__name__}.{method}"))

    def step_end(self, thread: Any, obj: Any) -> None:
        """Release the step pseudo-lock: publish the thread's clock as
        the object's step clock and advance the thread."""
        entry = self._current.pop()
        vaddr = entry[1]
        tid = thread.tid
        vc = self._vcs[tid]
        key = ("step", vaddr)
        step = self._sync.get(key)
        if step is None:
            self._sync[key] = vc.copy()
        else:
            step.join(vc)
        vc.tick(tid)

    # ------------------------------------------------------------------
    # Kernel hooks: thread lifecycle
    # ------------------------------------------------------------------

    def on_start(self, parent: Any, child: Any) -> None:
        """Fork/Start: the child inherits the parent's clock."""
        pvc = self._vc(parent.tid, parent)
        cvc = self._vc(child.tid, child)
        cvc.join(pvc)
        cvc.tick(child.tid)
        pvc.tick(parent.tid)

    def on_join(self, joiner: Any, target: Any) -> None:
        """Join: the target's entire history flows into the joiner."""
        tvc = self._vc(target.tid, target)
        jvc = self._vc(joiner.tid, joiner)
        jvc.join(tvc)

    def on_create(self, obj: Any) -> None:
        """A ``New`` registered ``obj``: flag classes whose public
        state the field interposition cannot track (AMBSAN-OPAQUE)."""
        if type(obj).SANITIZE_FIELDS:
            vaddr = obj.__dict__.get("_vaddr")
            self._check_opaque(type(obj),
                               vaddr if vaddr is not None else -id(obj))

    def on_wakeup(self, waker: Any, target: Any) -> None:
        """Wakeup (Suspend/Wakeup, CondVar.signal): waker -> woken."""
        wvc = self._vc(waker.tid, waker)
        tvc = self._vc(target.tid, target)
        tvc.join(wvc)
        wvc.tick(waker.tid)

    def on_migrate(self, thread: Any, node_id: int, t_us: float) -> None:
        """The thread completed a migration hop to ``node_id``."""
        self._hops(thread).append((node_id, t_us))

    # ------------------------------------------------------------------
    # Synchronization-object hooks (called from repro.sim.sync)
    # ------------------------------------------------------------------

    def on_acquire(self, sync_obj: Any, thread: Any,
                   order: bool = True) -> None:
        vaddr = sync_obj.vaddr
        tid = thread.tid
        vc = self._vc(tid, thread)
        stored = self._sync.get(("sync", vaddr))
        if stored is not None:
            vc.join(stored)
        if not order:
            return
        site = self._caller_site(thread)
        held = self._held.setdefault(tid, {})
        cls = type(sync_obj).__name__
        for held_vaddr, held_site in held.items():
            held_obj = self.cluster.objects.get(held_vaddr)
            self.lock_order.record(
                held_vaddr, vaddr,
                type(held_obj).__name__ if held_obj else "Lock", cls,
                thread.name, held_site, site)
        held[vaddr] = site if site is not None else Site("?", 0, "?")

    def on_release(self, sync_obj: Any, thread: Any,
                   order: bool = True) -> None:
        vaddr = sync_obj.vaddr
        tid = thread.tid
        vc = self._vc(tid, thread)
        key = ("sync", vaddr)
        stored = self._sync.get(key)
        if stored is None:
            self._sync[key] = vc.copy()
        else:
            stored.join(vc)
        vc.tick(tid)
        if order:
            held = self._held.get(tid)
            if held is not None:
                held.pop(vaddr, None)

    def on_barrier(self, barrier: Any, threads: List[Any]) -> None:
        """A barrier cycle completed: all arrivals precede all
        departures, so every party's clock becomes the join."""
        joined = VectorClock()
        for thread in threads:
            joined.join(self._vc(thread.tid, thread))
        for thread in threads:
            vc = self._vcs[thread.tid]
            vc.join(joined)
            vc.tick(thread.tid)

    def held_site(self, tid: int, vaddr: int) -> Optional[Site]:
        """Where ``tid`` acquired the lock at ``vaddr`` (if held)."""
        return self._held.get(tid, {}).get(vaddr)

    # ------------------------------------------------------------------
    # Field access (called from the class-level interposition)
    # ------------------------------------------------------------------

    def record_access(self, obj: Any, obj_dict: Dict[str, Any],
                      vaddr: int, name: str, is_write: bool,
                      frame: Optional[FrameType]) -> None:
        if self._busy:
            return
        self._busy = True
        try:
            self._record_access(obj, obj_dict, vaddr, name, is_write,
                                frame)
        finally:
            self._busy = False

    def _record_access(self, obj: Any, obj_dict: Dict[str, Any],
                       vaddr: int, name: str, is_write: bool,
                       frame: Optional[FrameType]) -> None:
        thread, step_vaddr, op = self._current[-1]
        tid = thread.tid
        vc = self._vcs[tid]
        site = self._site(frame, op, thread)

        if is_write and obj_dict.get("_immutable"):
            self.immutable_writes += 1
            self._report(Finding(
                rule="AMBSAN-IMMUT",
                obj_cls=type(obj).__name__, obj_vaddr=vaddr, field=name,
                message=(f"write to immutable object "
                         f"{type(obj).__name__} {vaddr:#x} field "
                         f"{name!r}: replicas diverge silently"),
                site=site, migrations=tuple(self._hops(thread))))

        if vaddr != step_vaddr and self.cluster is not None \
                and thread.location is not None:
            node = self.cluster.nodes[thread.location]
            if not node.descriptors.is_resident(vaddr):
                self.residency_violations += 1
                verb = "write to" if is_write else "read of"
                self._report(Finding(
                    rule="AMBSAN-RESIDENT",
                    obj_cls=type(obj).__name__, obj_vaddr=vaddr,
                    field=name,
                    message=(f"direct {verb} non-resident object "
                             f"{type(obj).__name__} {vaddr:#x} field "
                             f"{name!r} from node {thread.location}: "
                             "real Amber state lives elsewhere"),
                    site=site, migrations=tuple(self._hops(thread))))

        cell = self._cells.get((vaddr, name))
        if cell is None:
            cell = _FieldState()
            self._cells[(vaddr, name)] = cell
        if is_write:
            prior: Optional[AccessSite] = None
            kind = ""
            we = cell.write_epoch
            if we is not None and we.tid != tid and not vc.covers(we):
                prior, kind = cell.write_site, "write/write"
            else:
                for rtid, rclock in cell.read_epochs.items():
                    if rtid != tid and rclock > vc.get(rtid):
                        prior = cell.read_sites.get(rtid)
                        kind = "read/write"
                        break
            if prior is not None or kind:
                self._race(obj, vaddr, name, kind, site, prior, thread)
            cell.write_epoch = vc.epoch(tid)
            cell.write_site = site
            cell.read_epochs = {}
            cell.read_sites = {}
        else:
            we = cell.write_epoch
            if we is not None and we.tid != tid and not vc.covers(we):
                self._race(obj, vaddr, name, "write/read", site,
                           cell.write_site, thread)
            cell.read_epochs[tid] = vc.get(tid)
            cell.read_sites[tid] = site

    def in_step(self) -> bool:
        return bool(self._current)

    def _check_opaque(self, cls: type, vaddr: int) -> None:
        """Flag public members the field interposition cannot track
        (see ``AMBSAN-OPAQUE`` in the module docstring) instead of
        silently skipping their accesses."""
        opaque = self._opaque_cache.get(cls)
        if opaque is None:
            opaque = _opaque_members(cls)
            self._opaque_cache[cls] = opaque
        for kind, name in opaque:
            self._report(Finding(
                rule="AMBSAN-OPAQUE",
                obj_cls=cls.__name__, obj_vaddr=vaddr, field=name,
                message=(f"public {kind} {cls.__name__}.{name} is "
                         f"invisible to the field interposition: "
                         f"accesses to it are NOT race-checked "
                         f"(store shared state in plain instance "
                         f"fields, or set SANITIZE_FIELDS = False "
                         f"and synchronize by hand)"),
                site=None))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _race(self, obj: Any, vaddr: int, name: str, kind: str,
              site: AccessSite, prior: Optional[AccessSite],
              thread: Any) -> None:
        self.races += 1
        self._report(Finding(
            rule="AMBSAN-RACE",
            obj_cls=type(obj).__name__, obj_vaddr=vaddr, field=name,
            message=(f"unsynchronized {kind} of "
                     f"{type(obj).__name__} {vaddr:#x} field {name!r}: "
                     "no happens-before edge and no common lock"),
            site=site, prior=prior,
            migrations=tuple(self._hops(thread))))

    def _report(self, finding: Finding) -> None:
        key = (finding.rule, finding.obj_cls, finding.field,
               finding.site.file if finding.site else "",
               finding.site.line if finding.site else 0,
               finding.prior.file if finding.prior else "",
               finding.prior.line if finding.prior else 0)
        if key in self._dedup or len(self.findings) >= MAX_FINDINGS:
            return
        self._dedup.add(key)
        self.findings.append(finding)
        if self.cluster is not None:
            slug = finding.rule.lower().replace("-", "_")
            self.cluster.metrics.inc(slug)
            tracer = self.cluster.tracer
            if tracer is not None:
                tracer.emit(
                    t_us=self.cluster.sim.now_us,
                    kind="san-finding",
                    node=(finding.site.node or 0) if finding.site
                    else 0,
                    thread=finding.site.thread if finding.site else "",
                    vaddr=finding.obj_vaddr,
                    detail=f"{finding.rule} {finding.obj_cls}."
                           f"{finding.field}")

    def _vc(self, tid: int, thread: Any) -> VectorClock:
        vc = self._vcs.get(tid)
        if vc is None:
            vc = VectorClock()
            vc.tick(tid)
            self._vcs[tid] = vc
            if thread.location is not None and tid not in \
                    self._migrations:
                now = (self.cluster.sim.now_us
                       if self.cluster is not None else 0.0)
                self._migrations[tid] = [(thread.location, now)]
        return vc

    def _hops(self, thread: Any) -> List[Tuple[int, float]]:
        hops = self._migrations.get(thread.tid)
        if hops is None:
            hops = []
            self._migrations[thread.tid] = hops
        return hops

    def _site(self, frame: Optional[FrameType], op: str,
              thread: Any) -> AccessSite:
        file, line = "?", 0
        if frame is not None:
            file = frame.f_code.co_filename
            line = frame.f_lineno
        now = (self.cluster.sim.now_us
               if self.cluster is not None else 0.0)
        return AccessSite(file, line, op, thread.name,
                          thread.location, now)

    def _caller_site(self, thread: Any) -> Optional[Site]:
        """Source position of the frame that invoked the current sync
        operation: the caller activation sits just below the sync op on
        the thread's stack, suspended at its ``yield Invoke`` line."""
        if len(thread.stack) < 2:
            return None
        caller = thread.stack[-2]
        gen = caller.gen
        if gen is None or gen.gi_frame is None:
            return None
        frame = gen.gi_frame
        where = f"{type(caller.obj).__name__}.{caller.method}"
        return Site(frame.f_code.co_filename, frame.f_lineno, where)


def _opaque_members(cls: type) -> Tuple[Tuple[str, str], ...]:
    """Public members of ``cls`` (strictly below ``SimObject``) that
    the class-level interposition cannot observe.

    ``__slots__`` entries never appear in the instance ``__dict__``, so
    :func:`_tracked_getattribute` bails out before recording the read;
    ``property`` values are computed on access and stored nowhere, so
    neither hook ever fires for them.
    """
    from repro.sim.objects import SimObject

    members: Set[Tuple[str, str]] = set()
    for klass in cls.__mro__:
        if klass is SimObject:
            break
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if not name.startswith("_"):
                members.add(("__slots__ entry", name))
        for name, value in klass.__dict__.items():
            if isinstance(value, property) and not name.startswith("_"):
                members.add(("property", name))
    return tuple(sorted(members))


# ---------------------------------------------------------------------------
# Class-level field interposition
# ---------------------------------------------------------------------------
#
# Installed on SimObject only while a sanitizer is active; removal
# restores the plain object protocol so unsanitized runs are untouched.


def _tracked_getattribute(self: Any, name: str) -> Any:
    value = object.__getattribute__(self, name)
    san = _rt.ACTIVE
    if san is None or not san._current or name.startswith("_"):
        return value
    if not type(self).SANITIZE_FIELDS:
        return value
    # AmberElide: interposition skipped for proven-confined/immutable
    # classes (empty set unless an artifact is active in non-audit mode).
    if type(self).__name__ in _ert.SKIP:
        return value
    obj_dict = object.__getattribute__(self, "__dict__")
    if name not in obj_dict:
        return value
    vaddr = obj_dict.get("_vaddr")
    if vaddr is None:
        return value
    san.record_access(self, obj_dict, vaddr, name, False,
                      sys._getframe(1))
    return value


def _tracked_setattr(self: Any, name: str, value: Any) -> None:
    san = _rt.ACTIVE
    if san is not None and san._current and not name.startswith("_") \
            and type(self).SANITIZE_FIELDS \
            and type(self).__name__ not in _ert.SKIP:
        obj_dict = object.__getattribute__(self, "__dict__")
        vaddr = obj_dict.get("_vaddr")
        if vaddr is not None:
            san.record_access(self, obj_dict, vaddr, name, True,
                              sys._getframe(1))
    object.__setattr__(self, name, value)


def _install_hooks() -> None:
    from repro.sim.objects import SimObject

    SimObject.__getattribute__ = _tracked_getattribute  # type: ignore
    SimObject.__setattr__ = _tracked_setattr  # type: ignore


def _remove_hooks() -> None:
    from repro.sim.objects import SimObject

    for dunder in ("__getattribute__", "__setattr__"):
        try:
            delattr(SimObject, dunder)
        except AttributeError:  # pragma: no cover - already clean
            pass
