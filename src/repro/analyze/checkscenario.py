"""Self-checking AmberCheck scenarios (``repro check``).

Each scenario explores a fixture from :mod:`repro.analyze.fixtures`
with the model checker of :mod:`repro.analyze.check` and verifies the
verdict the fixture was built to produce:

* the *hidden* race and the schedule-dependent deadlock — both clean on
  the default schedule, so invisible to single-run ``repro analyze`` —
  are found within the schedule budget, deterministically, and their
  recorded choice traces replay bit-identically;
* the correctly synchronized programs explore *clean to exhaustion*;
* DPOR visits no more schedules than exhaustive enumeration while
  reporting the same findings;
* the bundled applications stay clean across an exploration sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.analyze.check import (
    DEFAULT_MAX_SCHEDULES,
    CheckReport,
    check_program,
    run_schedule,
    sample_random_schedules,
)
from repro.analyze.fixtures import (
    run_hidden_deadlock,
    run_hidden_race,
    run_racy_counter,
    run_sync_zoo,
)
from repro.obs.metrics import MetricsRegistry

#: Fixtures ``repro check`` can explore by name (CLI ``--fixture``).
CHECK_FIXTURES: Dict[str, Callable[[int], Any]] = {
    "hidden-race": lambda seed: run_hidden_race(seed),
    "hidden-deadlock": lambda seed: run_hidden_deadlock(seed),
    "locked-counter": lambda seed: run_racy_counter(seed, locked=True,
                                                    rounds=2),
    "sync-zoo": lambda seed: run_sync_zoo(seed, rounds=1,
                                          cpus_per_node=1),
}

#: Random-sampling width for the manifestation-rate scenario.
RARITY_SAMPLES = 300
RARITY_SAMPLES_FAST = 80


@dataclass
class CheckOutcome:
    """Verdict of one model-checking scenario."""

    name: str
    description: str
    expected: str
    correct: bool
    deterministic: bool
    schedules: int
    #: Sorted finding signatures of the exploration (if any).
    signatures: List[str] = field(default_factory=list)
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.correct and self.deterministic


@dataclass
class CheckScenarioReport:
    """All scenarios of one ``repro check`` invocation."""

    seed: int
    fast: bool
    budget: int
    scenarios: List[CheckOutcome]

    @property
    def ok(self) -> bool:
        return all(scenario.ok for scenario in self.scenarios)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "fast": self.fast,
            "budget": self.budget,
            "ok": self.ok,
            "scenarios": [{
                "name": s.name,
                "description": s.description,
                "expected": s.expected,
                "ok": s.ok,
                "correct": s.correct,
                "deterministic": s.deterministic,
                "schedules": s.schedules,
                "signatures": s.signatures,
                "detail": s.detail,
            } for s in self.scenarios],
        }

    def render(self) -> str:
        lines = [f"AmberCheck report (seed {self.seed}, budget "
                 f"{self.budget})", "=" * 48]
        for s in self.scenarios:
            verdict = "PASS" if s.ok else "FAIL"
            lines.append("")
            lines.append(f"[{verdict}] {s.name}: {s.description}")
            lines.append(f"  expected: {s.expected}")
            lines.append(f"  correct: {s.correct}   "
                         f"deterministic: {s.deterministic}   "
                         f"schedules: {s.schedules}")
            for signature in s.signatures:
                lines.append(f"  finding: {signature}")
            if s.detail:
                lines.append(f"  {s.detail}")
        lines.append("")
        lines.append(f"overall: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def run_check_scenarios(seed: int = 0, fast: bool = False,
                        budget: int = DEFAULT_MAX_SCHEDULES,
                        metrics: Optional[MetricsRegistry] = None
                        ) -> CheckScenarioReport:
    """Run every scenario and collect the verdicts.

    ``metrics`` (a :class:`repro.obs.metrics.MetricsRegistry`)
    accumulates the explorer's ``check_*`` counters — schedules,
    prunes, backtracks, choice-point depths — across every scenario,
    for the CLI's ``--metrics-json`` artifact.
    """
    scenarios = [
        _finds_hidden_bug(
            "hidden-race",
            "race inside a one-segment gate window, clean on the "
            "default schedule",
            lambda: run_hidden_race(seed),
            finding_kind="sanitizer", rule="AMBSAN-RACE",
            seed=seed, budget=budget, fast=fast, metrics=metrics),
        _finds_hidden_bug(
            "hidden-deadlock",
            "lock order inverted only when a transient mode flag is "
            "observed",
            lambda: run_hidden_deadlock(seed),
            finding_kind="deadlock", rule="DEADLOCK",
            seed=seed, budget=budget, fast=fast, metrics=metrics),
        _explores_clean(
            "locked-counter-exhausts",
            "lock-protected counter explores clean to exhaustion",
            lambda: run_racy_counter(seed, locked=True, rounds=2),
            budget=budget, metrics=metrics),
        _explores_clean(
            "sync-zoo-exhausts",
            "uniprocessor synchronization zoo explores clean to "
            "exhaustion",
            lambda: run_sync_zoo(seed, rounds=1, cpus_per_node=1),
            budget=budget, metrics=metrics),
        _dpor_not_worse(seed, budget, metrics=metrics),
    ]
    if not fast:
        scenarios.append(_apps_clean_sweep(budget, metrics=metrics))
    return CheckScenarioReport(seed=seed, fast=fast, budget=budget,
                               scenarios=scenarios)


# ----------------------------------------------------------------------
# Scenario construction
# ----------------------------------------------------------------------


def _finds_hidden_bug(name: str, description: str,
                      program_fn: Callable[[], Any], finding_kind: str,
                      rule: str, seed: int, budget: int,
                      fast: bool,
                      metrics: Optional[MetricsRegistry] = None
                      ) -> CheckOutcome:
    """The default schedule must be clean, exploration must surface a
    ``finding_kind`` finding whose trace replays bit-identically, a
    repeat exploration must agree, and the bug must be rare under
    random scheduling."""
    problems: List[str] = []

    baseline = run_schedule(program_fn)
    if baseline.status != "ok" or baseline.findings:
        problems.append(
            f"default schedule not clean: {baseline.status} "
            f"{baseline.signatures()}")

    report = check_program(program_fn, name=name, budget=budget,
                           metrics=metrics)
    hits = [f for f in report.findings
            if f.kind == finding_kind and rule in f.signature]
    if not hits:
        problems.append(f"no {rule} finding in {report.schedules} "
                        f"schedules")
    deterministic = True
    if hits:
        finding = hits[0]
        replay = run_schedule(program_fn, finding.trace)
        reproduced = (replay.status == "deadlock"
                      if finding_kind == "deadlock"
                      else finding.signature in
                      [sig for sig, _ in replay.findings])
        if not reproduced or replay.diverged:
            problems.append(
                f"replay of trace {finding.trace} did not reproduce "
                f"the finding (status {replay.status})")
        again = run_schedule(program_fn, finding.trace)
        if (replay.choices != again.choices
                or replay.status != again.status
                or replay.value_repr != again.value_repr
                or replay.signatures() != again.signatures()):
            deterministic = False
            problems.append("replay is not bit-identical across runs")
        repeat = check_program(program_fn, name=name, budget=budget,
                               metrics=metrics)
        if (repeat.signatures() != report.signatures()
                or [f.trace for f in repeat.findings]
                != [f.trace for f in report.findings]):
            deterministic = False
            problems.append("exploration not deterministic across "
                            "repeat runs")

    samples = RARITY_SAMPLES_FAST if fast else RARITY_SAMPLES
    outcomes = sample_random_schedules(program_fn, samples, seed=seed)
    manifested = sum(1 for o in outcomes
                     if o.status != "ok" or o.findings)
    rate = manifested / samples
    if rate >= 0.05:
        problems.append(f"bug manifests in {100 * rate:.1f}% of "
                        f"{samples} random schedules (needs < 5%)")

    return CheckOutcome(
        name=name, description=description,
        expected=f"{rule} within {budget} schedules, replayable, "
                 f"< 5% random manifestation",
        correct=not [p for p in problems
                     if "deterministic" not in p
                     and "bit-identical" not in p],
        deterministic=deterministic,
        schedules=report.schedules,
        signatures=report.signatures(),
        detail="; ".join(problems) + (
            f" [manifestation {manifested}/{samples}]"
            if not problems else ""))


def _explores_clean(name: str, description: str,
                    program_fn: Callable[[], Any],
                    budget: int,
                    metrics: Optional[MetricsRegistry] = None
                    ) -> CheckOutcome:
    report = check_program(program_fn, name=name, budget=budget,
                           metrics=metrics)
    problems: List[str] = []
    if not report.ok:
        problems.append(f"findings: {report.signatures()}")
    if not report.exhausted:
        problems.append(
            f"did not exhaust within {budget} schedules")
    return CheckOutcome(
        name=name, description=description,
        expected="clean, exhausted",
        correct=not problems, deterministic=True,
        schedules=report.schedules,
        signatures=report.signatures(),
        detail="; ".join(problems))


def _dpor_not_worse(seed: int, budget: int,
                    metrics: Optional[MetricsRegistry] = None
                    ) -> CheckOutcome:
    """On a small instance both modes must exhaust with identical
    finding signatures, and DPOR must visit no more schedules."""
    program_fn = lambda: run_hidden_race(seed, decoys=2)  # noqa: E731
    exhaustive = check_program(program_fn, name="exhaustive",
                               budget=budget, dpor=False, prune=False,
                               metrics=metrics)
    reduced = check_program(program_fn, name="dpor", budget=budget,
                            dpor=True, prune=True, metrics=metrics)
    problems: List[str] = []
    if not (exhaustive.exhausted and reduced.exhausted):
        problems.append("a mode failed to exhaust")
    if exhaustive.signatures() != reduced.signatures():
        problems.append(
            f"finding sets differ: exhaustive "
            f"{exhaustive.signatures()} vs DPOR "
            f"{reduced.signatures()}")
    if reduced.schedules > exhaustive.schedules:
        problems.append(
            f"DPOR explored more schedules ({reduced.schedules}) "
            f"than exhaustive ({exhaustive.schedules})")
    return CheckOutcome(
        name="dpor-vs-exhaustive",
        description="partial-order reduction preserves findings at "
                    "lower cost",
        expected="same findings, fewer or equal schedules",
        correct=not problems, deterministic=True,
        schedules=reduced.schedules,
        signatures=reduced.signatures(),
        detail="; ".join(problems) + (
            f" [exhaustive {exhaustive.schedules} vs DPOR "
            f"{reduced.schedules} schedules]" if not problems else ""))


def _apps_clean_sweep(budget: int,
                      metrics: Optional[MetricsRegistry] = None
                      ) -> CheckOutcome:
    """Small configurations of the bundled applications must explore
    clean to exhaustion or the sweep budget."""
    from repro.apps.matmul import run_matmul
    from repro.apps.queens import run_amber_queens
    from repro.apps.sor.amber_sor import run_amber_sor
    from repro.apps.sor.grid import SorProblem

    sweep_budget = min(budget, 12)
    jobs: List[Any] = [
        ("sor", lambda: run_amber_sor(
            SorProblem(rows=12, cols=8, iterations=2),
            nodes=2, cpus_per_node=2)),
        ("queens", lambda: run_amber_queens(
            n=5, nodes=2, cpus_per_node=2)),
        ("matmul", lambda: run_matmul(
            m=12, k=12, n=12, nodes=2, cpus_per_node=2)),
    ]
    problems: List[str] = []
    schedules = 0
    reports: List[CheckReport] = []
    for name, job in jobs:
        report = check_program(job, name=name, budget=sweep_budget,
                               metrics=metrics)
        reports.append(report)
        schedules += report.schedules
        if not report.ok:
            problems.append(f"{name}: {report.signatures()}")
    return CheckOutcome(
        name="apps-clean-sweep",
        description="bundled sor/queens/matmul explore clean under a "
                    "small budget",
        expected=f"clean across <= {sweep_budget} schedules each",
        correct=not problems, deterministic=True,
        schedules=schedules,
        signatures=sorted(sig for report in reports
                          for sig in report.signatures()),
        detail="; ".join(problems))
