"""Purpose-built workloads for exercising AmberSan.

Each fixture is a small simulated Amber program with a *known* verdict:
the racy counter and the immutable write must be flagged, their
synchronized twins must come back clean, the two-lock inversion must
produce a lock-order cycle without deadlocking, and the true deadlock
must stall with a wait-for cycle report.

``seed`` varies per-thread compute jitter (via a locally seeded
``random.Random`` — the simulator itself stays PRNG-free), shifting the
interleaving while leaving the defect and its source sites fixed: the
determinism scenarios assert that finding *signatures* are identical
across seeds.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional

from repro.sim.cluster import ClusterConfig
from repro.sim.objects import SimObject
from repro.sim.program import AmberProgram, ProgramResult
from repro.sim.sync import (
    Barrier,
    CondVar,
    Lock,
    Monitor,
    ReaderWriterLock,
)
from repro.sim.syscalls import (
    Compute,
    Fork,
    Invoke,
    Join,
    MoveTo,
    New,
    SetImmutable,
)

DEFAULT_ROUNDS = 6


class Tally(SimObject):
    """A shared mutable counter, touched directly by racing threads."""

    def __init__(self) -> None:
        self.count = 0


class BumpAnchor(SimObject):
    """Per-thread anchor whose operation pokes a *different* object's
    state — the access pattern the Amber model says needs a lock."""

    def bump(self, ctx: Any, shared: Tally, jitter_us: List[float],
             lock: Optional[Lock]) -> Any:
        for pause in jitter_us:
            yield Compute(pause)
            if lock is not None:
                yield Invoke(lock, "acquire")
            count = shared.count
            yield Compute(1.0)
            shared.count = count + 1
            if lock is not None:
                yield Invoke(lock, "release")


def run_racy_counter(seed: int = 0, locked: bool = False,
                     rounds: int = DEFAULT_ROUNDS,
                     sanitize: bool = True) -> ProgramResult:
    """Two threads increment an unlocked shared counter (race), or the
    same program with a lock (clean) when ``locked``."""

    def main(ctx: Any, seed: int) -> Any:
        rng = random.Random(seed)
        shared = yield New(Tally)
        lock = (yield New(Lock)) if locked else None
        jitters = [[round(rng.uniform(0.5, 4.0), 3)
                    for _ in range(rounds)] for _ in range(2)]
        threads = []
        for i in range(2):
            anchor = yield New(BumpAnchor)
            threads.append((yield Fork(anchor, "bump", shared,
                                       jitters[i], lock,
                                       name=f"bump-{i}")))
        for thread in threads:
            yield Join(thread)
        return shared.count

    program = AmberProgram(ClusterConfig(nodes=1, cpus_per_node=2),
                           sanitize=sanitize)
    return program.run(main, seed)


# ---------------------------------------------------------------------------
# Immutable write after replication
# ---------------------------------------------------------------------------


class Config(SimObject):
    """Marked immutable and replicated; writing it afterwards silently
    diverges the replicas — the paper's section 2.3 hazard."""

    def __init__(self) -> None:
        self.value = 1

    def get(self, ctx: Any) -> int:
        return self.value


class Clobberer(SimObject):
    def clobber(self, ctx: Any, cfg: Config) -> Any:
        yield Compute(1.0)
        cfg.value = 99


def run_immutable_write(seed: int = 0,
                        sanitize: bool = True) -> ProgramResult:
    def main(ctx: Any, seed: int) -> Any:
        rng = random.Random(seed)
        cfg = yield New(Config)
        yield SetImmutable(cfg)
        yield MoveTo(cfg, 1)        # replicate onto node 1
        writer = yield New(Clobberer)
        yield Compute(round(rng.uniform(0.5, 3.0), 3))
        thread = yield Fork(writer, "clobber", cfg, name="clobberer")
        yield Join(thread)
        return (yield Invoke(cfg, "get"))

    program = AmberProgram(ClusterConfig(nodes=2, cpus_per_node=2),
                           sanitize=sanitize)
    return program.run(main, seed)


# ---------------------------------------------------------------------------
# Direct touch of non-resident state
# ---------------------------------------------------------------------------


class Far(SimObject):
    def __init__(self) -> None:
        self.value = 7

    def ping(self, ctx: Any) -> Any:
        yield Compute(1.0)
        return self.value


class Toucher(SimObject):
    def touch(self, ctx: Any, far: Far) -> Any:
        got = yield Invoke(far, "ping")   # migrates there and back
        direct = far.value                # WRONG: state lives remotely
        yield Compute(1.0)
        return got + direct


def run_nonresident_touch(seed: int = 0,
                          sanitize: bool = True) -> ProgramResult:
    def main(ctx: Any, seed: int) -> Any:
        rng = random.Random(seed)
        far = yield New(Far)
        yield MoveTo(far, 1)
        toucher = yield New(Toucher)
        yield Compute(round(rng.uniform(0.5, 3.0), 3))
        thread = yield Fork(toucher, "touch", far, name="toucher")
        return (yield Join(thread))

    program = AmberProgram(ClusterConfig(nodes=2, cpus_per_node=2),
                           sanitize=sanitize)
    return program.run(main, seed)


# ---------------------------------------------------------------------------
# Lock-order inversion (no deadlock observed) and a true deadlock
# ---------------------------------------------------------------------------


class LockUser(SimObject):
    def pair(self, ctx: Any, first: Lock, second: Lock,
             hold_us: float) -> Any:
        yield Invoke(first, "acquire")
        yield Compute(hold_us)
        yield Invoke(second, "acquire")
        yield Compute(hold_us)
        yield Invoke(second, "release")
        yield Invoke(first, "release")


def run_lock_inversion(seed: int = 0,
                       sanitize: bool = True) -> ProgramResult:
    """Thread order-ab takes A then B; thread order-ba takes B then A —
    run *sequentially* so the run cannot deadlock, yet the lock-order
    graph must still report the cycle."""

    def main(ctx: Any, seed: int) -> Any:
        rng = random.Random(seed)
        lock_a = yield New(Lock)
        lock_b = yield New(Lock)
        hold = round(rng.uniform(1.0, 5.0), 3)
        for name, first, second in (("order-ab", lock_a, lock_b),
                                    ("order-ba", lock_b, lock_a)):
            user = yield New(LockUser)
            thread = yield Fork(user, "pair", first, second, hold,
                                name=name)
            yield Join(thread)
        return True

    program = AmberProgram(ClusterConfig(nodes=1, cpus_per_node=2),
                           sanitize=sanitize)
    return program.run(main, seed)


class RwUser(SimObject):
    def pair(self, ctx: Any, first: Any, second: Any, mode: str,
             hold_us: float) -> Any:
        acquire, release = f"acquire_{mode}", f"release_{mode}"
        yield Invoke(first, acquire)
        yield Compute(hold_us)
        yield Invoke(second, acquire)
        yield Compute(hold_us)
        yield Invoke(second, release)
        yield Invoke(first, release)


def run_rw_inversion(seed: int = 0, mode: str = "read",
                     sanitize: bool = True) -> ProgramResult:
    """Two threads take a pair of reader-writer locks in opposite
    orders, *sequentially* (no deadlock possible).  In ``write`` mode
    this is the classic inversion and must produce a lock-order cycle;
    in ``read`` mode the acquisitions don't exclude each other, so no
    AMBSAN-ORDER edge may be recorded at all."""

    def main(ctx: Any, seed: int) -> Any:
        rng = random.Random(seed)
        rw_a = yield New(ReaderWriterLock)
        rw_b = yield New(ReaderWriterLock)
        hold = round(rng.uniform(1.0, 5.0), 3)
        for name, first, second in (("rw-ab", rw_a, rw_b),
                                    ("rw-ba", rw_b, rw_a)):
            user = yield New(RwUser)
            thread = yield Fork(user, "pair", first, second, mode,
                                hold, name=name)
            yield Join(thread)
        return True

    program = AmberProgram(ClusterConfig(nodes=1, cpus_per_node=2),
                           sanitize=sanitize)
    return program.run(main, seed)


def run_lock_deadlock(seed: int = 0,
                      sanitize: bool = False) -> ProgramResult:
    """The same inversion run *concurrently* with holds long enough to
    interleave fatally: stalls, raising DeadlockError with the wait-for
    cycle report."""

    def main(ctx: Any, seed: int) -> Any:
        lock_a = yield New(Lock)
        lock_b = yield New(Lock)
        user_ab = yield New(LockUser)
        user_ba = yield New(LockUser)
        t1 = yield Fork(user_ab, "pair", lock_a, lock_b, 50_000.0,
                        name="order-ab")
        t2 = yield Fork(user_ba, "pair", lock_b, lock_a, 50_000.0,
                        name="order-ba")
        yield Join(t1)
        yield Join(t2)
        return True

    program = AmberProgram(ClusterConfig(nodes=1, cpus_per_node=2),
                           sanitize=sanitize)
    return program.run(main, seed)


# ---------------------------------------------------------------------------
# Opaque state: __slots__/property members the interposition cannot see
# ---------------------------------------------------------------------------


class SlottedTally(SimObject):
    """Counter stored in a slot: reads bypass the ``__dict__``-based
    field hook, so races on it would be silently missed — the sanitizer
    must flag the class as AMBSAN-OPAQUE instead."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        super().__init__()
        self.count = 0


class DerivedTally(SimObject):
    """Counter exposed through a property: values are computed on
    access and stored nowhere the hooks can observe."""

    def __init__(self) -> None:
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    def bump(self) -> None:
        self._count += 1


class SlotBumper(SimObject):
    def bump(self, ctx: Any, shared: SlottedTally,
             jitter_us: List[float]) -> Any:
        for pause in jitter_us:
            yield Compute(pause)
            count = shared.count
            yield Compute(1.0)
            shared.count = count + 1


def run_opaque_state(seed: int = 0, rounds: int = DEFAULT_ROUNDS,
                     sanitize: bool = True) -> ProgramResult:
    """Two threads race on a slotted counter (a race the field hooks
    cannot fully observe) while a property-bearing object sits nearby:
    both classes must be reported as AMBSAN-OPAQUE."""

    def main(ctx: Any, seed: int) -> Any:
        rng = random.Random(seed)
        shared = yield New(SlottedTally)
        derived = yield New(DerivedTally)
        jitters = [[round(rng.uniform(0.5, 4.0), 3)
                    for _ in range(rounds)] for _ in range(2)]
        threads = []
        for i in range(2):
            anchor = yield New(SlotBumper)
            threads.append((yield Fork(anchor, "bump", shared,
                                       jitters[i], name=f"slot-{i}")))
        for thread in threads:
            yield Join(thread)
        return (shared.count, derived.count)

    program = AmberProgram(ClusterConfig(nodes=1, cpus_per_node=2),
                           sanitize=sanitize)
    return program.run(main, seed)


# ---------------------------------------------------------------------------
# Synchronization zoo: every primitive used correctly => must be clean
# ---------------------------------------------------------------------------


class Slot(SimObject):
    def __init__(self) -> None:
        self.value = 0
        self.total = 0



class Phaser(SimObject):
    """Barrier-ordered single-writer/many-readers of ``slot.value``."""

    def run(self, ctx: Any, slot: Slot, barrier: Barrier, rounds: int,
            me: int) -> Any:
        seen = 0
        for rnd in range(rounds):
            if me == 0:
                slot.value = rnd + 1
            yield Invoke(barrier, "wait")
            seen += slot.value
            yield Invoke(barrier, "wait")
        return seen


class MonUser(SimObject):
    """Monitor-protected increments of ``slot.total``."""

    def add(self, ctx: Any, slot: Slot, monitor: Monitor,
            rounds: int) -> Any:
        for _ in range(rounds):
            yield Invoke(monitor, "enter")
            total = slot.total
            yield Compute(1.0)
            slot.total = total + 1
            yield Invoke(monitor, "exit")


class Waiter(SimObject):
    def wait_ready(self, ctx: Any, slot: Slot, monitor: Monitor,
                   cond: CondVar) -> Any:
        yield Invoke(monitor, "enter")
        while slot.value == 0:
            yield Invoke(cond, "wait")
        got = slot.value
        yield Invoke(monitor, "exit")
        return got


class Setter(SimObject):
    def set_ready(self, ctx: Any, slot: Slot, monitor: Monitor,
                  cond: CondVar, value: int) -> Any:
        yield Compute(25.0)
        yield Invoke(monitor, "enter")
        slot.value = value
        yield Invoke(cond, "signal")
        yield Invoke(monitor, "exit")


def run_sync_zoo(seed: int = 0, rounds: int = 3,
                 sanitize: bool = True,
                 cpus_per_node: int = 4) -> ProgramResult:
    """Barrier epochs, monitor mutual exclusion, and a condvar handoff,
    all used correctly: the sanitizer must stay silent.
    ``cpus_per_node=1`` serializes the threads so every interleaving is
    a scheduling choice — the AmberCheck scenario explores that variant
    to exhaustion."""

    def main(ctx: Any, seed: int) -> Any:
        rng = random.Random(seed)
        parties = 3
        slot = yield New(Slot)
        barrier = yield New(Barrier, parties)
        monitor = yield New(Monitor)

        phasers = []
        for i in range(parties):
            anchor = yield New(Phaser)
            phasers.append((yield Fork(anchor, "run", slot, barrier,
                                       rounds, i, name=f"phase-{i}")))
        seen = 0
        for thread in phasers:
            seen += yield Join(thread)

        adders = []
        for i in range(2):
            anchor = yield New(MonUser)
            yield Compute(round(rng.uniform(0.5, 2.0), 3))
            adders.append((yield Fork(anchor, "add", slot, monitor,
                                      rounds, name=f"mon-{i}")))
        for thread in adders:
            yield Join(thread)

        hand_mon = yield New(Monitor)
        hand_slot = yield New(Slot)
        cond = yield New(CondVar, hand_mon)
        waiter = yield New(Waiter)
        setter = yield New(Setter)
        tw = yield Fork(waiter, "wait_ready", hand_slot, hand_mon,
                        cond, name="cv-waiter")
        ts = yield Fork(setter, "set_ready", hand_slot, hand_mon,
                        cond, 41, name="cv-setter")
        got = yield Join(tw)
        yield Join(ts)
        return {"phase_seen": seen, "total": slot.total,
                "handoff": got}

    program = AmberProgram(
        ClusterConfig(nodes=1, cpus_per_node=cpus_per_node),
        sanitize=sanitize)
    return program.run(main, seed)


# ---------------------------------------------------------------------------
# AmberCheck fixtures: bugs that hide from single-run analysis
#
# Both run on a uniprocessor node so the interleaving is fully
# determined by scheduling choices (dispatch picks and end-of-segment
# preemptions) — exactly the space repro.analyze.check explores.  On
# the default FIFO schedule each program is clean; the defect manifests
# only when the victim thread is preempted inside a brief window.
# ---------------------------------------------------------------------------


class GateBoard(SimObject):
    """Lock-protected flag plus an unsynchronized payload field."""

    def __init__(self) -> None:
        self.open = 0
        self.data = 0


class WindowWriter(SimObject):
    """Opens the gate for one compute segment, writes the payload
    unsynchronized, then closes the gate.  The window sits at the very
    *start* of the thread while the chaser observes at the *end* of
    its decoy work: a random scheduler keeps both threads at similar
    progress, so catching the window open needs a tail event — the
    chaser winning nearly every timeslice coin-flip in a row."""

    def run(self, ctx: Any, board: GateBoard, guard: Lock,
            jitter_us: List[float], window_us: float) -> Any:
        yield Compute(jitter_us[0])
        yield Invoke(guard, "acquire")
        board.open = 1
        yield Invoke(guard, "release")
        yield Compute(window_us)
        board.data = board.data + 1       # unsynchronized on purpose
        yield Invoke(guard, "acquire")
        board.open = 0
        yield Invoke(guard, "release")
        for pause in jitter_us[1:]:
            yield Compute(pause)


class GateChaser(SimObject):
    """Observes the gate under the lock; writes the payload (also
    unsynchronized) only if it caught the gate open."""

    def run(self, ctx: Any, board: GateBoard, guard: Lock,
            jitter_us: List[float]) -> Any:
        for pause in jitter_us:
            yield Compute(pause)
        yield Invoke(guard, "acquire")
        seen = board.open
        yield Invoke(guard, "release")
        if seen:
            yield Compute(1.0)
            board.data = board.data + 10
        return seen


def run_hidden_race(seed: int = 0, decoys: int = 10,
                    sanitize: bool = True) -> ProgramResult:
    """A data race on ``board.data`` that manifests only if the chaser's
    gate observation lands inside the writer's one-segment window —
    rare under random scheduling, clean on the default schedule, found
    deterministically by AmberCheck."""

    def main(ctx: Any, seed: int) -> Any:
        rng = random.Random(seed)
        board = yield New(GateBoard)
        guard = yield New(Lock)
        jitters = [[round(rng.uniform(0.5, 3.0), 3)
                    for _ in range(decoys)] for _ in range(2)]
        writer = yield New(WindowWriter)
        chaser = yield New(GateChaser)
        tw = yield Fork(writer, "run", board, guard, jitters[0],
                        round(rng.uniform(2.0, 5.0), 3), name="opener")
        tc = yield Fork(chaser, "run", board, guard, jitters[1],
                        name="chaser")
        seen = yield Join(tc)
        yield Join(tw)
        return {"data": board.data, "seen": seen}

    program = AmberProgram(ClusterConfig(nodes=1, cpus_per_node=1),
                           sanitize=sanitize)
    return program.run(main, seed)


class ModeBoard(SimObject):
    def __init__(self) -> None:
        self.mode = 0


class ModeFlipper(SimObject):
    """Transiently publishes mode=1 (early — see
    :class:`WindowWriter`), then takes A before B."""

    def run(self, ctx: Any, board: ModeBoard, guard: Lock,
            lock_a: Lock, lock_b: Lock, jitter_us: List[float],
            window_us: float) -> Any:
        yield Compute(jitter_us[0])
        yield Invoke(guard, "acquire")
        board.mode = 1
        yield Invoke(guard, "release")
        yield Compute(window_us)
        yield Invoke(guard, "acquire")
        board.mode = 0
        yield Invoke(guard, "release")
        for pause in jitter_us[1:]:
            yield Compute(pause)
        yield Invoke(lock_a, "acquire")
        yield Compute(3.0)
        yield Invoke(lock_b, "acquire")
        yield Compute(1.0)
        yield Invoke(lock_b, "release")
        yield Invoke(lock_a, "release")


class ModeFollower(SimObject):
    """Takes the two locks in an order *decided by* the observed mode:
    B before A only if it caught the transient mode=1."""

    def run(self, ctx: Any, board: ModeBoard, guard: Lock,
            lock_a: Lock, lock_b: Lock,
            jitter_us: List[float]) -> Any:
        for pause in jitter_us:
            yield Compute(pause)
        yield Invoke(guard, "acquire")
        seen = board.mode
        yield Invoke(guard, "release")
        first, second = ((lock_b, lock_a) if seen
                         else (lock_a, lock_b))
        yield Invoke(first, "acquire")
        yield Compute(3.0)
        yield Invoke(second, "acquire")
        yield Compute(1.0)
        yield Invoke(second, "release")
        yield Invoke(first, "release")
        return seen


def run_hidden_deadlock(seed: int = 0, decoys: int = 10,
                        sanitize: bool = True) -> ProgramResult:
    """A deadlock reachable only through a double coincidence: the
    follower must observe the transient mode=1 (inverting its lock
    order), and the two lock phases must then interleave fatally.  The
    default schedule is clean — same lock order, no cycle, no stall —
    so single-run ``repro analyze`` cannot see it."""

    def main(ctx: Any, seed: int) -> Any:
        rng = random.Random(seed)
        board = yield New(ModeBoard)
        guard = yield New(Lock)
        lock_a = yield New(Lock)
        lock_b = yield New(Lock)
        jitters = [[round(rng.uniform(0.5, 3.0), 3)
                    for _ in range(decoys)] for _ in range(2)]
        flipper = yield New(ModeFlipper)
        follower = yield New(ModeFollower)
        tf = yield Fork(flipper, "run", board, guard, lock_a, lock_b,
                        jitters[0], round(rng.uniform(2.0, 5.0), 3),
                        name="flipper")
        tg = yield Fork(follower, "run", board, guard, lock_a, lock_b,
                        jitters[1], name="follower")
        seen = yield Join(tg)
        yield Join(tf)
        return {"seen": seen}

    program = AmberProgram(ClusterConfig(nodes=1, cpus_per_node=1),
                           sanitize=sanitize)
    return program.run(main, seed)
