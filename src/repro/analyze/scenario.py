"""Self-checking AmberSan scenarios (``repro analyze``).

Each scenario runs a fixture from :mod:`repro.analyze.fixtures` (or a
bundled application) under the sanitizer and checks the verdict the
fixture was built to produce: the races and misuse are *found*, the
correct programs stay *clean*, the findings are *deterministic* across
repeat runs and seeds, and sanitizing *changes nothing* about the
simulated execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Set, cast

from repro.analyze.fixtures import (
    run_immutable_write,
    run_lock_inversion,
    run_nonresident_touch,
    run_racy_counter,
    run_sync_zoo,
)
from repro.analyze.runtime import sanitize_runs
from repro.analyze.sanitizer import SanitizerReport


@dataclass
class AnalysisOutcome:
    """Verdict of one analysis scenario."""

    name: str
    description: str
    #: What the sanitizer was expected to report, human-readable.
    expected: str
    correct: bool
    deterministic: bool
    elapsed_us: float
    #: Sorted, seed/time-stable finding signatures of the first run.
    signatures: List[str] = field(default_factory=list)
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.correct and self.deterministic


@dataclass
class AnalysisReport:
    """All scenarios of one ``repro analyze`` invocation."""

    seed: int
    fast: bool
    scenarios: List[AnalysisOutcome]

    @property
    def ok(self) -> bool:
        return all(scenario.ok for scenario in self.scenarios)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "fast": self.fast,
            "ok": self.ok,
            "scenarios": [{
                "name": s.name,
                "description": s.description,
                "expected": s.expected,
                "ok": s.ok,
                "correct": s.correct,
                "deterministic": s.deterministic,
                "elapsed_us": s.elapsed_us,
                "signatures": s.signatures,
                "detail": s.detail,
            } for s in self.scenarios],
        }

    def render(self) -> str:
        lines = [f"AmberSan analysis report (seed {self.seed})",
                 "=" * 48]
        for s in self.scenarios:
            verdict = "PASS" if s.ok else "FAIL"
            lines.append("")
            lines.append(f"[{verdict}] {s.name}: {s.description}")
            lines.append(f"  expected: {s.expected}")
            lines.append(f"  correct: {s.correct}   "
                         f"deterministic: {s.deterministic}")
            for signature in s.signatures:
                lines.append(f"  finding: {signature}")
            if s.detail:
                lines.append(f"  {s.detail}")
        lines.append("")
        lines.append(f"overall: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def run_analysis_scenarios(seed: int = 0,
                           fast: bool = False) -> AnalysisReport:
    """Run every scenario under ``seed`` and collect the verdicts."""
    scenarios = [
        _expect_findings(
            "racy-counter",
            "two threads bump an unlocked shared counter",
            lambda s: run_racy_counter(seed=s),
            rules={"AMBSAN-RACE"}, seed=seed),
        _expect_clean(
            "locked-counter",
            "the same counter behind a Lock",
            lambda s: run_racy_counter(seed=s, locked=True), seed=seed),
        _expect_findings(
            "immutable-write",
            "write to an immutable-marked object after replication",
            lambda s: run_immutable_write(seed=s),
            rules={"AMBSAN-IMMUT"}, seed=seed),
        _expect_findings(
            "non-resident-touch",
            "direct read of state the thread migrated away from",
            lambda s: run_nonresident_touch(seed=s),
            rules={"AMBSAN-RESIDENT"}, seed=seed),
        _expect_findings(
            "lock-inversion",
            "A->B and B->A acquisition orders on a run that did "
            "not deadlock",
            lambda s: run_lock_inversion(seed=s),
            rules={"AMBSAN-ORDER"}, seed=seed),
        _expect_clean(
            "sync-zoo",
            "barrier epochs, monitor sections, and a condvar "
            "handoff used correctly",
            lambda s: run_sync_zoo(seed=s), seed=seed),
        _timing_neutral(seed),
    ]
    if not fast:
        scenarios.append(_apps_clean(seed))
    return AnalysisReport(seed=seed, fast=fast, scenarios=scenarios)


# ----------------------------------------------------------------------
# Scenario construction
# ----------------------------------------------------------------------


def _report_of(result: Any) -> SanitizerReport:
    return cast(SanitizerReport, result.cluster.sanitizer.report())


def _expect_findings(name: str, description: str,
                     fixture: Callable[[int], Any],
                     rules: Set[str], seed: int) -> AnalysisOutcome:
    """The fixture must produce at least one finding of each expected
    rule, no findings of other rules, and identical signatures on a
    repeat run and on neighbouring seeds."""
    result = fixture(seed)
    report = _report_of(result)
    seen_rules = {f.rule for f in report.findings}
    signatures = report.signatures()
    correct = rules <= seen_rules and seen_rules <= rules
    detail = ""
    if not correct:
        detail = (f"expected rules {sorted(rules)}, "
                  f"saw {sorted(seen_rules)}")
    deterministic = True
    for other_seed in (seed, seed + 1, seed + 2):
        again = _report_of(fixture(other_seed)).signatures()
        if again != signatures:
            deterministic = False
            detail = (detail + " " if detail else "") + (
                f"signatures diverge at seed {other_seed}")
            break
    return AnalysisOutcome(
        name=name, description=description,
        expected=" + ".join(sorted(rules)),
        correct=correct, deterministic=deterministic,
        elapsed_us=result.elapsed_us,
        signatures=signatures, detail=detail)


def _expect_clean(name: str, description: str,
                  fixture: Callable[[int], Any],
                  seed: int) -> AnalysisOutcome:
    result = fixture(seed)
    report = _report_of(result)
    detail = "" if report.ok else report.render()
    return AnalysisOutcome(
        name=name, description=description, expected="clean",
        correct=report.ok, deterministic=True,
        elapsed_us=result.elapsed_us,
        signatures=report.signatures(), detail=detail)


def _timing_neutral(seed: int) -> AnalysisOutcome:
    """Sanitizing must not move a single simulated timestamp or change
    the program's result."""
    plain = run_racy_counter(seed=seed, sanitize=False)
    sanitized = run_racy_counter(seed=seed, sanitize=True)
    correct = (plain.elapsed_us == sanitized.elapsed_us
               and plain.value == sanitized.value)
    detail = "" if correct else (
        f"elapsed {plain.elapsed_us} vs {sanitized.elapsed_us}, "
        f"value {plain.value} vs {sanitized.value}")
    return AnalysisOutcome(
        name="timing-neutral",
        description="identical elapsed time and result with and "
                    "without the sanitizer",
        expected="bit-identical run", correct=correct,
        deterministic=True, elapsed_us=sanitized.elapsed_us,
        detail=detail)


def _apps_clean(seed: int) -> AnalysisOutcome:
    """Every bundled application must run sanitizer-clean."""
    from repro.apps.matmul import run_matmul
    from repro.apps.queens import run_amber_queens
    from repro.apps.sor.amber_sor import run_amber_sor
    from repro.apps.sor.grid import SorProblem

    dirty: List[str] = []
    elapsed = 0.0
    jobs = [
        ("sor", lambda: run_amber_sor(
            SorProblem(rows=24, cols=16, iterations=4),
            nodes=2, cpus_per_node=2)),
        ("queens", lambda: run_amber_queens(
            n=6, nodes=2, cpus_per_node=2)),
        ("matmul", lambda: run_matmul(
            m=24, k=24, n=24, nodes=2, cpus_per_node=2)),
    ]
    for name, job in jobs:
        with sanitize_runs() as sanitizers:
            outcome = job()
        elapsed += getattr(outcome, "elapsed_us", 0.0)
        for sanitizer in sanitizers:
            report = sanitizer.report()
            if not report.ok:
                dirty.append(f"{name}: {report.render()}")
    return AnalysisOutcome(
        name="apps-clean",
        description="bundled sor/queens/matmul run sanitizer-clean",
        expected="clean", correct=not dirty, deterministic=True,
        elapsed_us=elapsed, detail="; ".join(dirty))
