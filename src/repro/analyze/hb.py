"""Vector clocks for happens-before tracking.

The sanitizer keeps one :class:`VectorClock` per simulated thread and one
per synchronization source (lock, monitor, barrier, per-object operation
step).  An access is recorded as an :class:`Epoch` — the accessing
thread's id and its own clock component at the time — and a later access
races with it iff the later thread's clock does not *cover* the epoch.

This is the FastTrack representation (Flanagan & Freund, PLDI 2009):
full clocks per thread, lightweight epochs per shadow cell.
"""

from __future__ import annotations

from typing import Dict, Iterable, NamedTuple, Optional, Tuple


class Epoch(NamedTuple):
    """``clock``-th event of thread ``tid`` (its own component)."""

    tid: int
    clock: int

    def __str__(self) -> str:
        return f"{self.clock}@t{self.tid}"


class VectorClock:
    """A mapping from thread id to logical clock component.

    Components absent from the mapping are zero.  All operations are by
    construction free of floating point and PRNG use.
    """

    __slots__ = ("_clock",)

    def __init__(self,
                 clock: Optional[Dict[int, int]] = None) -> None:
        self._clock: Dict[int, int] = dict(clock) if clock else {}

    def get(self, tid: int) -> int:
        return self._clock.get(tid, 0)

    def tick(self, tid: int) -> None:
        self._clock[tid] = self._clock.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """In-place component-wise maximum."""
        mine = self._clock
        for tid, clock in other._clock.items():
            if clock > mine.get(tid, 0):
                mine[tid] = clock

    def copy(self) -> "VectorClock":
        return VectorClock(self._clock)

    def epoch(self, tid: int) -> Epoch:
        """The caller's current epoch (own component)."""
        return Epoch(tid, self._clock.get(tid, 0))

    def covers(self, epoch: Epoch) -> bool:
        """True iff ``epoch`` happens-before (or equals) this clock."""
        return epoch.clock <= self._clock.get(epoch.tid, 0)

    def items(self) -> Iterable[Tuple[int, int]]:
        return self._clock.items()

    def __len__(self) -> int:
        return len(self._clock)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"t{tid}:{clock}" for tid, clock
                          in sorted(self._clock.items()))
        return f"<VC {inner}>"


def join_all(clocks: Iterable[VectorClock]) -> VectorClock:
    """The least upper bound of ``clocks`` (a fresh clock)."""
    out = VectorClock()
    for clock in clocks:
        out.join(clock)
    return out
