"""Command-line interface: regenerate any paper artifact.

::

    python -m repro table1              # Table 1 latencies
    python -m repro figure1             # SOR program structure
    python -m repro figure2 [--fast]    # SOR speedup by configuration
    python -m repro figure3 [--fast]    # speedup vs problem size
    python -m repro ablations           # A1-A6 design-claim measurements
    python -m repro all [--fast]        # everything above, in order
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import ablations, figure1, figure2, figure3, table1

_ARTIFACTS = {
    "table1": lambda fast: table1.main(),
    "figure1": lambda fast: figure1.main(),
    "figure2": lambda fast: figure2.main(
        iterations=8 if fast else figure2.DEFAULT_ITERATIONS),
    "figure3": lambda fast: figure3.main(
        iterations=6 if fast else figure3.DEFAULT_ITERATIONS),
    "ablations": lambda fast: ablations.main(),
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the evaluation artifacts of the Amber "
                    "paper (SOSP 1989) on the simulated cluster.")
    parser.add_argument("artifact",
                        choices=sorted(_ARTIFACTS) + ["all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--fast", action="store_true",
                        help="fewer SOR iterations (quick look)")
    args = parser.parse_args(argv)

    names = sorted(_ARTIFACTS) if args.artifact == "all" \
        else [args.artifact]
    outputs = []
    for name in names:
        outputs.append(_ARTIFACTS[name](args.fast))
    print("\n\n".join(outputs))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
