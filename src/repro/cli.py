"""Command-line interface: regenerate paper artifacts, trace and profile.

::

    python -m repro table1                    # Table 1 latencies
    python -m repro figure1                   # SOR program structure
    python -m repro figure2 [--fast]          # SOR speedup by configuration
    python -m repro figure3 [--fast]          # speedup vs problem size
    python -m repro ablations                 # A1-A6 design-claim runs
    python -m repro all [--fast]              # everything above, in order

    python -m repro trace sor --fast --out trace.json
                                              # Chrome/Perfetto trace export
    python -m repro profile sor --fast        # per-thread time attribution
    python -m repro faults [--fast] [--seed N]
                                              # fault injection & recovery
                                              # report (see docs/FAULTS.md)
    python -m repro faults --recover [--fast] # permanent-crash recovery
                                              # report (docs/RECOVERY.md)
    python -m repro chaos [--fast] [--seed N] [--json PATH]
                                              # live-runtime chaos suite:
                                              # loss/dup/reset/kill against
                                              # real node processes
                                              # (see docs/CHAOS.md)
    python -m repro analyze [--fast] [--seed N]
                                              # AmberSan race/deadlock
                                              # scenarios (docs/ANALYSIS.md)
    python -m repro analyze --workload sor --fast
                                              # sanitize one workload
    python -m repro check [--fast] [--seed N] [--budget N]
                                              # AmberCheck schedule
                                              # exploration scenarios
    python -m repro check --fixture hidden-race
                                              # explore one fixture
    python -m repro check --fixture hidden-race --replay 0,0,0,1
                                              # replay a choice trace
    python -m repro lint [paths...] [--json PATH]
                                              # concurrency AST lint
                                              # (exit 1 on findings)
    python -m repro flow [--fast] [--json PATH]
                                              # AmberFlow object-flow
                                              # analysis + placement-hint
                                              # cross-validation
                                              # (docs/ANALYSIS.md)
    python -m repro flow --hints-out PATH     # emit the PlacementHints
                                              # artifact
    python -m repro flow --expect PATH        # gate findings against a
                                              # committed expectation
    python -m repro perf [--fast] [--json PATH]
                                              # AmberPerf benchmark suite
                                              # (see docs/PERF.md)
    python -m repro perf --profile sor --fast # hot-loop self-profile
    python -m repro perf --compare OLD NEW    # flag regressions between
                                              # two BENCH_*.json files

``trace`` and ``profile`` also accept ``--sanitize`` to run the
workload under AmberSan and print its findings.

Every artifact accepts ``--metrics-json PATH`` to dump the run's metrics
registry (operation-latency histograms with p50/p90/p99, counters,
gauges) as JSON.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import ablations, figure1, figure2, figure3, table1
from repro.bench.reporting import write_metrics_json

_ARTIFACTS = {
    "table1": lambda fast, metrics_out: table1.main(
        metrics_out=metrics_out),
    "figure1": lambda fast, metrics_out: figure1.main(
        metrics_out=metrics_out),
    "figure2": lambda fast, metrics_out: figure2.main(
        iterations=8 if fast else figure2.DEFAULT_ITERATIONS,
        metrics_out=metrics_out),
    "figure3": lambda fast, metrics_out: figure3.main(
        iterations=6 if fast else figure3.DEFAULT_ITERATIONS,
        metrics_out=metrics_out),
    "ablations": lambda fast, metrics_out: ablations.main(
        metrics_out=metrics_out),
}


# ---------------------------------------------------------------------------
# Workloads available to ``trace`` and ``profile``
# ---------------------------------------------------------------------------


def _run_sor(fast: bool, tracer):
    from repro.apps.sor import SorProblem, run_amber_sor
    if fast:
        problem = SorProblem(rows=40, cols=280, iterations=3)
        return run_amber_sor(problem, nodes=2, cpus_per_node=2,
                             tracer=tracer)
    problem = SorProblem(iterations=20)
    return run_amber_sor(problem, nodes=4, cpus_per_node=4, tracer=tracer)


def _run_queens(fast: bool, tracer):
    from repro.apps.queens import run_amber_queens
    return run_amber_queens(n=8 if fast else 10, nodes=2,
                            cpus_per_node=2 if fast else 4, tracer=tracer)


def _run_matmul(fast: bool, tracer):
    from repro.apps.matmul import run_matmul
    size = 48 if fast else 96
    return run_matmul(m=size, k=size, n=size, nodes=4, cpus_per_node=2,
                      tracer=tracer)


WORKLOADS = {
    "sor": _run_sor,
    "queens": _run_queens,
    "matmul": _run_matmul,
}


def _run_workload(args, tracer):
    """Run the selected workload, sanitized when ``--sanitize``.

    Returns ``(result, sanitizer_reports)``."""
    if not getattr(args, "sanitize", False):
        return WORKLOADS[args.workload](args.fast, tracer), []
    from repro.analyze.runtime import sanitize_runs
    with sanitize_runs() as sanitizers:
        result = WORKLOADS[args.workload](args.fast, tracer)
    return result, [sanitizer.report() for sanitizer in sanitizers]


def _print_sanitizer_reports(reports) -> None:
    for report in reports:
        print()
        print(report.render())


def _cmd_trace(args) -> int:
    from repro.obs.perfetto import export_chrome_trace
    from repro.sim.trace import Tracer

    tracer = Tracer(max_events=args.max_events)
    result, san_reports = _run_workload(args, tracer)
    count = export_chrome_trace(tracer.events, args.out,
                                nodes=result.cluster.config.nodes)
    dropped = f" ({tracer.dropped} dropped)" if tracer.dropped else ""
    print(f"wrote {count} trace events to {args.out}{dropped}")
    print(f"simulated elapsed: {result.elapsed_us:.1f} us "
          f"on {result.cluster.config.label()}")
    print("open in https://ui.perfetto.dev or chrome://tracing")
    _print_sanitizer_reports(san_reports)
    _maybe_write_metrics(args, result)
    return 0


def _cmd_profile(args) -> int:
    from repro.obs.profile import profile_result, render_profile

    result, san_reports = _run_workload(args, None)
    profiles = profile_result(result)
    print(render_profile(
        profiles, elapsed_us=result.elapsed_us,
        title=(f"Per-thread time attribution: {args.workload} "
               f"({result.cluster.config.label()}), microseconds")))
    print()
    print(result.cluster.metrics.render(title="Operation metrics"))
    _print_sanitizer_reports(san_reports)
    _maybe_write_metrics(args, result)
    return 0


def _cmd_faults(args) -> int:
    import json

    if args.recover:
        from repro.recovery.scenario import run_recovery_scenarios
        report = run_recovery_scenarios(seed=args.seed, fast=args.fast)
    else:
        from repro.faults.scenario import run_fault_scenarios
        report = run_fault_scenarios(seed=args.seed, fast=args.fast)
    print(report.render())
    if args.metrics_json:
        with open(args.metrics_json, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2)
        print(f"\nreport written to {args.metrics_json}")
    return 0 if report.ok else 1


def _cmd_chaos(args) -> int:
    import json

    from repro.faults.livescenario import run_chaos_scenarios

    report = run_chaos_scenarios(seed=args.seed, fast=args.fast)
    print(report.render())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2)
        print(f"\nreport written to {args.json}")
    return 0 if report.ok else 1


def _cmd_analyze(args) -> int:
    import json

    if args.workload:
        from repro.analyze.runtime import sanitize_runs
        with sanitize_runs() as sanitizers:
            result = WORKLOADS[args.workload](args.fast, None)
        reports = [sanitizer.report() for sanitizer in sanitizers]
        ok = all(report.ok for report in reports)
        print(f"sanitized {args.workload}: simulated "
              f"{result.elapsed_us:.1f} us on "
              f"{result.cluster.config.label()}")
        for report in reports:
            print()
            print(report.render())
        if args.json:
            with open(args.json, "w") as handle:
                json.dump([report.as_dict() for report in reports],
                          handle, indent=2)
            print(f"\nreport written to {args.json}")
        return 0 if ok else 1

    from repro.analyze.scenario import run_analysis_scenarios
    report = run_analysis_scenarios(seed=args.seed, fast=args.fast)
    print(report.render())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2)
        print(f"\nreport written to {args.json}")
    return 0 if report.ok else 1


def _cmd_check(args) -> int:
    import json

    from repro.analyze.checkscenario import (
        CHECK_FIXTURES,
        run_check_scenarios,
    )

    if args.replay is not None and not args.fixture:
        print("--replay requires --fixture", file=sys.stderr)
        return 2

    if args.fixture:
        from repro.analyze.check import check_program, run_schedule
        fixture = CHECK_FIXTURES[args.fixture]
        seed = args.seed

        def program_fn():
            return fixture(seed)

        if args.replay is not None:
            choices = [int(token) for token in
                       args.replay.replace(",", " ").split()]
            outcome = run_schedule(program_fn, choices)
            print(f"replayed {args.fixture} (seed {seed}) with "
                  f"trace {choices}")
            print(f"  status: {outcome.status}")
            if outcome.value_repr:
                print(f"  value: {outcome.value_repr}")
            if outcome.diverged:
                print("  WARNING: trace diverged from the recorded "
                      "schedule")
            for line in outcome.detail.splitlines():
                print(f"  {line}")
            for _, rendered in outcome.findings:
                print()
                print(rendered)
            if args.json:
                with open(args.json, "w") as handle:
                    json.dump({
                        "fixture": args.fixture, "seed": seed,
                        "trace": choices, "status": outcome.status,
                        "value": outcome.value_repr,
                        "diverged": outcome.diverged,
                        "choices": outcome.choices,
                        "signatures": outcome.signatures(),
                    }, handle, indent=2)
                print(f"\nreplay written to {args.json}")
            clean = (outcome.status == "ok" and not outcome.findings
                     and not outcome.diverged)
            return 0 if clean else 1

        report = check_program(program_fn, name=args.fixture,
                               budget=args.budget,
                               dpor=not args.exhaustive,
                               progress=print)
        print(report.render())
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(report.as_dict(), handle, indent=2)
            print(f"\nreport written to {args.json}")
        return 0 if report.ok else 1

    metrics = None
    if args.metrics_json:
        from repro.obs.metrics import MetricsRegistry
        metrics = MetricsRegistry()
    report = run_check_scenarios(seed=args.seed, fast=args.fast,
                                 budget=args.budget, metrics=metrics)
    print(report.render())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2)
        print(f"\nreport written to {args.json}")
    if metrics is not None:
        write_metrics_json(args.metrics_json,
                           {"check": metrics.as_dict()})
        print(f"exploration metrics written to {args.metrics_json}")
    return 0 if report.ok else 1


def _cmd_perf(args) -> int:
    import json

    from repro.perf import benchfile, harness

    if args.compare:
        old = benchfile.load_bench(args.compare[0])
        new = benchfile.load_bench(args.compare[1])
        result = benchfile.compare_benches(old, new,
                                           threshold=args.threshold)
        print(benchfile.render_compare(result))
        return 0 if result.ok else 1

    if args.profile:
        from repro.perf.hotprof import profile_runs, render_hotloop
        with profile_runs() as profiler:
            result = WORKLOADS[args.profile](args.fast, None)
        print(render_hotloop(
            profiler,
            title=(f"Hot-loop self-profile: {args.profile} "
                   f"({result.cluster.config.label()}), host time")))
        if args.trace_out:
            from repro.obs.perfetto import (
                export_chrome_trace,
                profiler_track_events,
            )
            count = export_chrome_trace(
                [], args.trace_out,
                extra=profiler_track_events(profiler))
            print(f"\nwrote {count} self-profiler trace events to "
                  f"{args.trace_out}")
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(profiler.as_dict(), handle, indent=2)
            print(f"profile written to {args.json}")
        return 0

    only = args.bench or None
    suite = harness.run_suite(fast=args.fast, reps=args.reps,
                              warmup=args.warmup, only=only,
                              progress=print)
    print()
    print(suite.render())
    if args.json:
        doc = benchfile.write_bench_json(suite, args.json)
        print(f"\nbench file written to {args.json} "
              f"(rev {doc['git_rev']}, machine "
              f"{doc['machine']['fingerprint']})")
    if args.baseline:
        old = benchfile.load_bench(args.baseline)
        result = benchfile.compare_benches(
            old, benchfile.bench_dict(suite),
            threshold=args.threshold)
        print()
        print(benchfile.render_compare(result))
        return 0 if suite.ok and result.ok else 1
    return 0 if suite.ok else 1


def _cmd_lint(args) -> int:
    import json

    from repro.analyze.lint import RULES, lint_paths

    paths = args.paths or ["src/repro/apps", "examples"]
    findings = lint_paths(paths)
    for finding in findings:
        print(finding.render())
    if args.explain:
        print()
        for rule, text in sorted(RULES.items()):
            print(f"{rule}: {text}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump({
                "paths": paths,
                "findings": [
                    {"path": f.path, "line": f.line, "rule": f.rule,
                     "message": f.message} for f in findings
                ],
            }, handle, indent=2)
        print(f"findings written to {args.json}")
    if findings:
        print(f"\n{len(findings)} finding(s)")
        return 1
    print(f"clean: {', '.join(paths)}")
    return 0


def _cmd_flow(args) -> int:
    import json

    from repro.analyze.flow import run_flow_scenarios

    report = run_flow_scenarios(fast=args.fast, paths=args.paths,
                                expect=args.expect)
    print(report.render())
    if args.hints_out:
        with open(args.hints_out, "w") as handle:
            handle.write(report.hints.to_json())
        print(f"\nplacement hints written to {args.hints_out}")
    if args.write_expect:
        with open(args.write_expect, "w") as handle:
            json.dump(report.findings_payload(), handle, indent=2)
            handle.write("\n")
        print(f"\nfindings expectation written to {args.write_expect}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2)
        print(f"\nreport written to {args.json}")
    return 0 if report.ok else 1


def _cmd_elide(args) -> int:
    import json

    from repro.analyze.elide.scenario import run_elide_scenarios

    report = run_elide_scenarios(paths=args.paths, fast=args.fast,
                                 verify=args.verify)
    print(report.render())
    if args.artifact_out:
        with open(args.artifact_out, "w") as handle:
            handle.write(report.artifact.to_json())
        print(f"\nelision artifact written to {args.artifact_out}")
    if args.bench_out and report.bench is not None:
        with open(args.bench_out, "w") as handle:
            json.dump(report.bench, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nelision-active bench written to {args.bench_out}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2)
        print(f"\nreport written to {args.json}")
    return 0 if report.ok else 1


def _maybe_write_metrics(args, result) -> None:
    if args.metrics_json:
        write_metrics_json(args.metrics_json,
                           {args.workload: result.cluster.metrics.as_dict()})
        print(f"metrics written to {args.metrics_json}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the evaluation artifacts of the Amber "
                    "paper (SOSP 1989) on the simulated cluster, or "
                    "trace/profile a simulated workload.")
    sub = parser.add_subparsers(dest="command", required=True,
                                metavar="command")

    for name in sorted(_ARTIFACTS) + ["all"]:
        sp = sub.add_parser(name, help=f"regenerate {name}")
        sp.add_argument("--fast", action="store_true",
                        help="fewer SOR iterations (quick look)")
        sp.add_argument("--metrics-json", metavar="PATH", default=None,
                        help="dump the runs' metrics registries as JSON")

    tp = sub.add_parser("trace",
                        help="run a workload and export a Chrome/Perfetto "
                             "trace")
    tp.add_argument("workload", choices=sorted(WORKLOADS))
    tp.add_argument("--fast", action="store_true",
                    help="smaller problem (quick look)")
    tp.add_argument("--out", metavar="PATH", default="trace.json",
                    help="trace-event JSON output path (default: "
                         "trace.json)")
    tp.add_argument("--max-events", type=int, default=500_000,
                    help="tracer ring capacity (default: 500000)")
    tp.add_argument("--metrics-json", metavar="PATH", default=None,
                    help="also dump the run's metrics registry as JSON")
    tp.add_argument("--sanitize", action="store_true",
                    help="run under AmberSan and print its findings "
                         "(simulated times are unchanged)")

    fp = sub.add_parser("faults",
                        help="run the fault-recovery scenarios and print "
                             "a pass/fail report")
    fp.add_argument("--fast", action="store_true",
                    help="smaller workloads (quick look / CI smoke)")
    fp.add_argument("--seed", type=int, default=0,
                    help="fault plan seed (default: 0)")
    fp.add_argument("--recover", action="store_true",
                    help="run the crash-recovery scenarios instead: "
                         "permanent node death survived via checkpoint "
                         "promotion and thread resurrection (see "
                         "docs/RECOVERY.md)")
    fp.add_argument("--metrics-json", metavar="PATH", default=None,
                    help="dump the recovery report (verdicts + fault "
                         "counters) as JSON")

    pp = sub.add_parser("profile",
                        help="run a workload and print per-thread time "
                             "attribution")
    pp.add_argument("workload", choices=sorted(WORKLOADS))
    pp.add_argument("--fast", action="store_true",
                    help="smaller problem (quick look)")
    pp.add_argument("--metrics-json", metavar="PATH", default=None,
                    help="also dump the run's metrics registry as JSON")
    pp.add_argument("--sanitize", action="store_true",
                    help="run under AmberSan and print its findings "
                         "(simulated times are unchanged)")

    xp = sub.add_parser("chaos",
                        help="AmberChaos: run the live-runtime chaos "
                             "scenarios (seeded loss/dup/delay/resets "
                             "plus mid-run process kills) and print a "
                             "pass/fail report")
    xp.add_argument("--fast", action="store_true",
                    help="smaller workloads (CI smoke)")
    xp.add_argument("--seed", type=int, default=0,
                    help="fault plan seed (default: 0)")
    xp.add_argument("--json", metavar="PATH", default=None,
                    help="dump the report (verdicts + hardening/chaos "
                         "counters) as JSON")

    ap = sub.add_parser("analyze",
                        help="run the AmberSan analysis scenarios "
                             "(race/immutable/residency/lock-order) and "
                             "print a pass/fail report")
    ap.add_argument("--fast", action="store_true",
                    help="skip the bundled-apps sweep (CI smoke)")
    ap.add_argument("--seed", type=int, default=0,
                    help="fixture jitter seed (default: 0)")
    ap.add_argument("--workload", choices=sorted(WORKLOADS), default=None,
                    help="instead of the scenarios, sanitize one "
                         "bundled workload and report its findings")
    ap.add_argument("--json", metavar="PATH", default=None,
                    help="dump the report (verdicts + finding "
                         "signatures) as JSON")

    cp = sub.add_parser("check",
                        help="AmberCheck: explore all relevantly-"
                             "distinct thread schedules of the bounded "
                             "fixtures (DPOR model checking) and print "
                             "a pass/fail report")
    cp.add_argument("--fast", action="store_true",
                    help="fewer random-rarity samples, skip the "
                         "bundled-apps sweep (CI smoke)")
    cp.add_argument("--seed", type=int, default=0,
                    help="fixture jitter seed (default: 0)")
    cp.add_argument("--budget", type=int, default=2000,
                    help="max schedules to explore (default: 2000)")
    cp.add_argument("--fixture", choices=sorted(
                        "hidden-race hidden-deadlock locked-counter "
                        "sync-zoo".split()), default=None,
                    help="instead of the scenarios, explore one "
                         "fixture and report its findings")
    cp.add_argument("--exhaustive", action="store_true",
                    help="with --fixture: full enumeration instead of "
                         "dynamic partial-order reduction")
    cp.add_argument("--replay", metavar="TRACE", default=None,
                    help="with --fixture: replay a recorded choice "
                         "trace (comma-separated indices, e.g. "
                         "'0,0,1') instead of exploring")
    cp.add_argument("--json", metavar="PATH", default=None,
                    help="dump the report as JSON")
    cp.add_argument("--metrics-json", metavar="PATH", default=None,
                    help="dump the explorer's check_* counters "
                         "(schedules, prunes, backtracks, choice-point "
                         "depths) as JSON; scenario mode only")

    qp = sub.add_parser("perf",
                        help="AmberPerf: run the benchmark suite, "
                             "self-profile the simulator's hot loop, or "
                             "compare two BENCH_*.json files")
    qp.add_argument("--fast", action="store_true",
                    help="smaller problems, skip the live-socket "
                         "benchmark (CI suite)")
    qp.add_argument("--reps", type=int, default=3,
                    help="measured repetitions per benchmark "
                         "(default: 3)")
    qp.add_argument("--warmup", type=int, default=1,
                    help="unmeasured warmup runs per benchmark "
                         "(default: 1)")
    qp.add_argument("--bench", action="append", metavar="NAME",
                    help="run only the named benchmark (repeatable)")
    qp.add_argument("--json", metavar="PATH", default=None,
                    help="write the run as a BENCH_*.json file "
                         "(suite mode) or the profile dict "
                         "(--profile mode)")
    qp.add_argument("--baseline", metavar="PATH", default=None,
                    help="after the suite, compare against this bench "
                         "file and fail on regressions")
    qp.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                    default=None,
                    help="compare two bench files instead of running "
                         "(exit 1 on regressions beyond threshold)")
    qp.add_argument("--threshold", type=float, default=0.25,
                    help="regression threshold as a rate fraction "
                         "(default: 0.25)")
    qp.add_argument("--profile", choices=sorted(WORKLOADS),
                    default=None, metavar="WORKLOAD",
                    help="instead of the suite, self-profile the hot "
                         "loop under one workload (sor/queens/matmul)")
    qp.add_argument("--trace-out", metavar="PATH", default=None,
                    help="with --profile: also export the phase "
                         "timeline as a Perfetto trace")

    lp = sub.add_parser("lint",
                        help="static concurrency lint (AMB101-AMB109) "
                             "over Amber programs")
    lp.add_argument("paths", nargs="*",
                    help="files or directories (default: src/repro/apps "
                         "and examples)")
    lp.add_argument("--explain", action="store_true",
                    help="print the rule catalogue after the findings")
    lp.add_argument("--json", metavar="PATH", default=None,
                    help="also dump the findings as machine-readable "
                         "JSON")

    wp = sub.add_parser("flow",
                        help="AmberFlow: whole-program object-flow "
                             "analysis; derives placement hints, runs "
                             "AMB201-AMB205 diagnostics, and "
                             "cross-validates the hints against "
                             "simulator runs (docs/ANALYSIS.md)")
    wp.add_argument("--fast", action="store_true",
                    help="smaller app runs for the dynamic scenarios "
                         "(CI smoke)")
    wp.add_argument("--paths", nargs="*", default=None,
                    help="analyze these files/directories instead of "
                         "the bundled apps+examples (static scenarios "
                         "only)")
    wp.add_argument("--expect", metavar="PATH", default=None,
                    help="gate the finding set against this committed "
                         "expectation file")
    wp.add_argument("--write-expect", metavar="PATH", default=None,
                    help="write the finding set as a new expectation "
                         "file")
    wp.add_argument("--hints-out", metavar="PATH", default=None,
                    help="write the PlacementHints artifact as JSON")
    wp.add_argument("--json", metavar="PATH", default=None,
                    help="dump the full report as JSON")

    ep = sub.add_parser("elide",
                        help="AmberElide: static escape/confinement "
                             "analysis (AMB301-AMB304); proves locks "
                             "elidable and interposition skippable, "
                             "and verifies the elision fast paths "
                             "change nothing observable "
                             "(docs/ANALYSIS.md)")
    ep.add_argument("--fast", action="store_true",
                    help="smaller app runs for the dynamic scenarios "
                         "(CI smoke)")
    ep.add_argument("--paths", nargs="*", default=None,
                    help="analyze these files/directories instead of "
                         "the bundled apps+examples")
    ep.add_argument("--verify", action="store_true",
                    help="also run the dynamic soundness suite: "
                         "AmberCheck + audit-sanitizer runs, "
                         "elision-on vs. off bit-identity, and the "
                         "perf trajectory")
    ep.add_argument("--artifact-out", metavar="PATH", default=None,
                    help="write the amberelide/1 artifact as JSON")
    ep.add_argument("--bench-out", metavar="PATH", default=None,
                    help="with --verify: write the elision-active "
                         "bench document as JSON")
    ep.add_argument("--json", metavar="PATH", default=None,
                    help="dump the full report as JSON")

    args = parser.parse_args(argv)

    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "flow":
        return _cmd_flow(args)
    if args.command == "elide":
        return _cmd_elide(args)
    if args.command == "perf":
        return _cmd_perf(args)

    names = sorted(_ARTIFACTS) if args.command == "all" \
        else [args.command]
    metrics_out = {} if args.metrics_json else None
    outputs = []
    for name in names:
        outputs.append(_ARTIFACTS[name](args.fast, metrics_out))
    print("\n\n".join(outputs))
    if args.metrics_json:
        write_metrics_json(args.metrics_json, metrics_out)
        print(f"\nmetrics written to {args.metrics_json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
