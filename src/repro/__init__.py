"""Reproduction of the Amber system (Chase et al., SOSP 1989).

Amber lets a single parallel program treat a network of shared-memory
multiprocessors as one machine: a network-wide shared object space with
function-shipping invocation, explicit object mobility, and cheap threads.

Two execution backends share one object model:

:mod:`repro.sim`
    A deterministic discrete-event simulation of the paper's testbed
    (multiprocessor nodes on a shared Ethernet) used to regenerate every
    table and figure in the evaluation.
:mod:`repro.runtime`
    A live distributed runtime — one OS process per node, pickle over
    sockets — demonstrating the same programming model for real.

Supporting packages: :mod:`repro.core` (address space, descriptors,
forwarding, costs), :mod:`repro.dsm` (the Ivy-style page-based baseline of
section 4), :mod:`repro.apps` (Red/Black SOR and other workloads), and
:mod:`repro.bench` (drivers for each table, figure, and ablation).
"""

__version__ = "1.0.0"

from repro.core.costs import CostModel
from repro.errors import AmberError

__all__ = ["AmberError", "CostModel", "__version__"]
