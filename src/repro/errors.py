"""Exception hierarchy for the Amber reproduction.

All errors raised by this package derive from :class:`AmberError` so callers
can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class AmberError(Exception):
    """Base class for all errors raised by the repro package."""


class AddressSpaceError(AmberError):
    """Violation of the global virtual address space rules."""


class AddressExhaustedError(AddressSpaceError):
    """The address-space server has no regions left to hand out."""


class HeapError(AddressSpaceError):
    """Invalid heap operation (bad free, double free, misaligned address)."""


class DescriptorError(AmberError):
    """Inconsistent object-descriptor state transition."""


class ObjectNotFoundError(AmberError):
    """An object reference could not be resolved to a resident object."""


class AttachmentError(AmberError):
    """Invalid attachment operation (self-attach, unknown edge, ...)."""


class ImmutabilityError(AmberError):
    """Attempt to mutate or illegally move an immutable object."""


class MobilityError(AmberError):
    """An object or thread move could not be performed."""


class InvocationError(AmberError):
    """A malformed invocation (unknown method, non-generator operation...)."""


class SchedulerError(AmberError):
    """Invalid scheduler configuration or state."""


class SynchronizationError(AmberError):
    """Misuse of a synchronization object (release without hold, waiting
    on a condition without entering its monitor, ...)."""


class SimulationError(AmberError):
    """Internal inconsistency detected by the discrete-event engine."""


class DeadlockError(SimulationError):
    """The simulation cannot make progress but live threads remain."""


class NodeFailure(AmberError):
    """A node died and took unrecoverable state down with it.

    Raised into ``Join`` (and delivered to waiting callers) when a thread
    was lost with a confirmed-dead node and no checkpointed state exists
    to replay its work against — the typed alternative to hanging
    forever on a peer that will never answer.
    """


class RuntimeTransportError(AmberError):
    """Failure in the live runtime's socket transport."""


class ClusterError(AmberError):
    """Failure while bootstrapping or shutting down a live cluster."""


class RemoteInvocationError(AmberError):
    """An exception was raised by remote user code during an invocation.

    The original traceback text is preserved in ``remote_traceback``.
    """

    def __init__(self, message: str, remote_traceback: str = ""):
        super().__init__(message)
        self.remote_traceback = remote_traceback
