"""Fault-recovery scenarios: seeded chaos runs with a pass/fail verdict.

Each scenario runs a workload three times — once clean, twice under the
same seeded :class:`~repro.faults.plan.FaultPlan` — and checks two
properties:

* **correctness** — the faulted run produces the same answer as the
  clean one (faults may change *timing*, never *results*);
* **determinism** — the two faulted runs are bit-identical: same final
  simulated clock, same result fingerprint, same fault counters.

Three scenarios cover the recovery paths:

``sor``
    Red/Black SOR under message loss, duplication, delay, and a mid-run
    crash-and-restart of one node.  Exercises retransmission and the
    dispatch freeze/thaw.
``queens``
    The N-Queens work pool under the same fault mix — many small
    invocations, so drops land on protocol messages of every kind.
``mobility``
    A mobile object leaves a stale forwarding hint pointing at a node
    that then crashes for good.  A client following the hint must give
    up on the dead node and recover via the object's home node
    (``home_fallbacks``).

Used by ``python -m repro faults`` and the fault test-suite.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.faults.plan import FaultPlan, NodeCrash

#: Counters reported per scenario (all live in the run's MetricsRegistry).
COUNTER_NAMES = (
    "faults_injected",
    "faults_dropped",
    "faults_duplicated",
    "faults_delayed",
    "faults_crash_drops",
    "faults_partition_drops",
    "retries",
    "send_give_ups",
    "location_broadcasts",
    "crashes",
    "recoveries",
    "hints_repaired",
    "home_fallbacks",
    "home_probes",
    # Crash-recovery counters (repro.recovery); zero unless a
    # RecoveryConfig is attached to the run.
    "heartbeats_sent",
    "node_suspected",
    "node_confirmed_dead",
    "node_rejoined",
    "checkpoints_shipped",
    "checkpoints_lost",
    "objects_recovered",
    "objects_lost",
    "threads_lost",
    "invocations_replayed",
    "invocations_suppressed",
)


@dataclass
class ScenarioOutcome:
    """Verdict of one scenario."""

    name: str
    description: str
    plan: FaultPlan
    correct: bool
    deterministic: bool
    clean_elapsed_us: float
    faulted_elapsed_us: float
    fingerprint: str
    counters: Dict[str, int]
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.correct and self.deterministic


@dataclass
class FaultsReport:
    """All scenarios of one ``repro faults`` invocation."""

    seed: int
    fast: bool
    scenarios: List[ScenarioOutcome]

    @property
    def ok(self) -> bool:
        return all(scenario.ok for scenario in self.scenarios)

    @property
    def counters(self) -> Dict[str, int]:
        merged = {name: 0 for name in COUNTER_NAMES}
        for scenario in self.scenarios:
            for name, value in scenario.counters.items():
                merged[name] = merged.get(name, 0) + value
        return merged

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "fast": self.fast,
            "ok": self.ok,
            "counters": self.counters,
            "scenarios": [{
                "name": s.name,
                "description": s.description,
                "plan": s.plan.describe(),
                "ok": s.ok,
                "correct": s.correct,
                "deterministic": s.deterministic,
                "clean_elapsed_us": s.clean_elapsed_us,
                "faulted_elapsed_us": s.faulted_elapsed_us,
                "fingerprint": s.fingerprint,
                "counters": s.counters,
                "detail": s.detail,
            } for s in self.scenarios],
        }

    def render(self) -> str:
        lines = [f"Fault injection & recovery report (seed {self.seed})",
                 "=" * 52]
        for s in self.scenarios:
            verdict = "PASS" if s.ok else "FAIL"
            lines.append("")
            lines.append(f"[{verdict}] {s.name}: {s.description}")
            lines.append(f"  plan: {s.plan.describe()}")
            lines.append(
                f"  clean {s.clean_elapsed_us / 1000:.1f} ms -> faulted "
                f"{s.faulted_elapsed_us / 1000:.1f} ms "
                f"({s.faulted_elapsed_us / max(s.clean_elapsed_us, 1e-9):.2f}x)")
            lines.append(f"  correct: {s.correct}   "
                         f"deterministic: {s.deterministic}")
            if s.detail:
                lines.append(f"  {s.detail}")
            hot = {name: value for name, value in s.counters.items()
                   if value}
            lines.append("  counters: " + (", ".join(
                f"{name}={value}" for name, value in sorted(hot.items()))
                or "(none)"))
        lines.append("")
        lines.append("totals: " + ", ".join(
            f"{name}={value}"
            for name, value in sorted(self.counters.items()) if value))
        lines.append(f"overall: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def run_fault_scenarios(seed: int = 0, fast: bool = False) -> FaultsReport:
    """Run every scenario under ``seed`` and collect the verdicts."""
    scenarios = [
        _run_sor(seed, fast),
        _run_queens(seed, fast),
        _run_mobility(seed),
    ]
    return FaultsReport(seed=seed, fast=fast, scenarios=scenarios)


# ----------------------------------------------------------------------
# Scenario construction
# ----------------------------------------------------------------------


def _chaos_plan(seed: int, clean_elapsed_us: float,
                crash_node: int) -> FaultPlan:
    """The standard fault mix scaled to a workload's clean duration:
    5% loss, light duplication/delay/reorder, and one crash at 35% of
    the run with a restart short enough for in-protocol retries to span
    the outage (the default give-up budget is ~700 ms simulated)."""
    crash_at = 0.35 * clean_elapsed_us
    outage = min(0.25 * clean_elapsed_us, 200_000.0)
    return FaultPlan(
        seed=seed,
        drop_rate=0.05,
        dup_rate=0.01,
        delay_rate=0.02,
        reorder_rate=0.01,
        delay_min_us=50.0,
        delay_max_us=2_000.0,
        crashes=(NodeCrash(node=crash_node, at_us=crash_at,
                           restart_us=crash_at + outage),),
    )


def _counters(result) -> Dict[str, int]:
    metrics = result.stats.metrics
    return {name: metrics.counter(name).value for name in COUNTER_NAMES}


def _fingerprint(*parts) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def _run_sor(seed: int, fast: bool) -> ScenarioOutcome:
    import numpy as np

    from repro.apps.sor import SorProblem, run_amber_sor

    problem = (SorProblem(rows=10, cols=36, iterations=5) if fast
               else SorProblem(rows=16, cols=48, iterations=8))
    nodes, cpus = 2, 2

    def run(faults=None):
        return run_amber_sor(problem, nodes=nodes, cpus_per_node=cpus,
                             collect_grid=True, faults=faults)

    clean = run()
    plan = _chaos_plan(seed, clean.elapsed_us, crash_node=1)
    first, second = run(plan), run(plan)
    correct = bool(np.array_equal(clean.grid, first.grid))
    fp1 = _fingerprint(first.elapsed_us, first.grid.tobytes(),
                       sorted(_counters(first).items()))
    fp2 = _fingerprint(second.elapsed_us, second.grid.tobytes(),
                       sorted(_counters(second).items()))
    return ScenarioOutcome(
        name="sor",
        description=(f"Red/Black SOR {problem.rows}x{problem.cols}, "
                     f"{problem.iterations} iterations on "
                     f"{nodes}Nx{cpus}P"),
        plan=plan,
        correct=correct,
        deterministic=fp1 == fp2,
        clean_elapsed_us=clean.elapsed_us,
        faulted_elapsed_us=first.elapsed_us,
        fingerprint=fp1,
        counters=_counters(first),
        detail="grid bit-identical to clean run" if correct
        else "grid DIVERGED from clean run")


def _run_queens(seed: int, fast: bool) -> ScenarioOutcome:
    from repro.apps.queens import KNOWN_SOLUTIONS, run_amber_queens

    n = 7 if fast else 8
    nodes, cpus = 4, 2

    def run(faults=None):
        return run_amber_queens(n=n, nodes=nodes, cpus_per_node=cpus,
                                faults=faults)

    clean = run()
    plan = _chaos_plan(seed, clean.elapsed_us, crash_node=1)
    first, second = run(plan), run(plan)
    correct = (first.solutions == KNOWN_SOLUTIONS[n]
               and clean.solutions == KNOWN_SOLUTIONS[n])
    fp1 = _fingerprint(first.elapsed_us, first.solutions,
                       first.nodes_visited, sorted(_counters(first).items()))
    fp2 = _fingerprint(second.elapsed_us, second.solutions,
                       second.nodes_visited,
                       sorted(_counters(second).items()))
    return ScenarioOutcome(
        name="queens",
        description=f"{n}-Queens work pool on {nodes}Nx{cpus}P",
        plan=plan,
        correct=correct,
        deterministic=fp1 == fp2,
        clean_elapsed_us=clean.elapsed_us,
        faulted_elapsed_us=first.elapsed_us,
        fingerprint=fp1,
        counters=_counters(first),
        detail=f"{first.solutions} solutions "
               f"(expected {KNOWN_SOLUTIONS[n]})")


def _run_mobility(seed: int) -> ScenarioOutcome:
    plan = FaultPlan(
        seed=seed,
        drop_rate=0.02,
        # A short budget keeps the scenario quick: ~127 ms before a
        # sender declares the dead node unreachable.
        rto_us=1_000.0,
        rto_cap_us=32_000.0,
        max_attempts=8,
        # Node 2 dies for good after the token has already moved away,
        # stranding the stale forwarding hints that point at it.
        crashes=(NodeCrash(node=2, at_us=150_000.0, restart_us=None),),
    )

    clean_value, _, clean_counters = _mobility_run(None)
    v1, w1, c1 = _mobility_run(plan)
    v2, w2, c2 = _mobility_run(plan)
    correct = (v1 == clean_value and w1 == 0
               and c1["home_fallbacks"] >= 1)
    fp1 = _fingerprint(v1, w1, sorted(c1.items()))
    fp2 = _fingerprint(v2, w2, sorted(c2.items()))
    return ScenarioOutcome(
        name="mobility",
        description=("stale hint to a permanently dead node; client "
                     "recovers via the home node"),
        plan=plan,
        correct=correct,
        deterministic=fp1 == fp2,
        clean_elapsed_us=clean_counters["_elapsed_us"],
        faulted_elapsed_us=c1.pop("_elapsed_us"),
        fingerprint=fp1,
        counters=c1,
        detail=(f"invoke answered {v1} from node {w1} with "
                f"{c1['home_fallbacks']} home fallback(s)"))


def _mobility_run(faults) -> Tuple[int, int, Dict[str, int]]:
    """One run of the mobility scenario; returns (invoke result, node
    that answered, counters + ``_elapsed_us``)."""
    from repro.sim import (
        AmberProgram,
        ClusterConfig,
        Fork,
        Invoke,
        Join,
        Locate,
        MoveTo,
        New,
        SimObject,
        Sleep,
    )

    class Token(SimObject):
        SIZE_BYTES = 128

        def __init__(self, value=41):
            self.value = value

        def poke(self, ctx):
            if False:
                yield None
            return self.value + 1, ctx.node

    class Prober(SimObject):
        SIZE_BYTES = 128

        def __init__(self, token):
            self._token = token

        def run(self, ctx, sleep_us):
            # Locate caches a forwarding hint here via path compression.
            yield Locate(self._token)
            yield Sleep(sleep_us)
            # By now the token moved home and its last host is dead:
            # the cached hint is a trap.
            value, node = yield Invoke(self._token, "poke")
            return value, node

    def main(ctx):
        token = yield New(Token)            # home: node 0
        yield MoveTo(token, 2)
        prober = yield New(Prober, token)
        yield MoveTo(prober, 1)
        thread = yield Fork(prober, "run", 300_000.0)
        yield Sleep(50_000.0)
        yield MoveTo(token, 0)              # back home; hint at node 1
        return (yield Join(thread))         # now points at a dead end

    program = AmberProgram(ClusterConfig(nodes=3, cpus_per_node=2),
                           faults=faults)
    result = program.run(main)
    value, where = result.value
    counters = {name: result.metrics.counter(name).value
                for name in COUNTER_NAMES}
    counters["_elapsed_us"] = result.elapsed_us
    return value, where, counters
