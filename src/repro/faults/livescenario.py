"""AmberChaos: live-runtime chaos scenarios with a pass/fail verdict.

Where :mod:`repro.faults.scenario` runs the deterministic *simulator*
under a :class:`~repro.faults.plan.FaultPlan`, this suite runs the
**live multiprocess runtime** — real forked node processes, real TCP —
under the same plan, injected by :mod:`repro.faults.live`.  Five
scenarios cover the hardening layers (see ``docs/CHAOS.md``):

``live-sor``
    Red/Black SOR under seeded loss/duplication/delay/connection-resets
    plus a mid-run SIGKILL-and-restart of a bystander node.  The grid
    must be bitwise-equal to a clean run, the victim must rejoin and
    answer again (circuit breaker closes), and the chaos schedule must
    fingerprint identically per seed.
``live-queens``
    The N-Queens work pool under loss + a heavy duplicate rate.  The
    totals are an exactly-once ledger: a double-executed ``report``
    inflates them, an unrecovered drop deflates them.
``dedup``
    A hand-crafted byte-identical duplicate ``InvokeMsg`` pair: the
    counter must increment once and the executing node must account for
    the suppressed twin.
``typed-failures``
    A peer is SIGKILLed with no restart: every caller gets a typed
    ``NodeFailure``/``TimeoutError`` within the configured deadline, and
    once the breaker is open the failure is near-instant.
``coordinator-outage``
    The coordinator is closed mid-run and a successor adopts its port
    and address-space state: in-flight queries fail typed (no deadlock),
    clients reconnect and re-register, heartbeats resume, and the data
    plane keeps working.

Used by ``python -m repro chaos`` and the chaos test-suite.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.faults.live import schedule_fingerprint
from repro.faults.plan import FaultPlan, NodeCrash
from repro.recovery.config import PEER_TIMEOUT_ENV
from repro.runtime.objects import AmberObject

#: Counters merged from every node's kernel snapshot into the report.
LIVE_COUNTER_NAMES = (
    "resends",
    "dedup_in_flight",
    "dedup_replayed",
    "circuit_fast_fails",
    "circuit_reroutes",
    "circuit_opens",
    "circuit_probes",
    "circuit_closes",
    "chaos_frames",
    "chaos_dropped",
    "chaos_duplicated",
    "chaos_delayed",
    "chaos_resets",
    "chaos_partition_drops",
    "transport_retries",
    "transport_reconnects",
    "transport_dropped_on_close",
    "coordinator_reconnects",
)


@dataclass
class LiveScenarioOutcome:
    """Verdict of one live chaos scenario."""

    name: str
    description: str
    plan: str                       # FaultPlan.describe(), or ""
    ok: bool
    elapsed_s: float
    fingerprint: str
    counters: Dict[str, int]
    detail: str = ""


@dataclass
class ChaosReport:
    """All scenarios of one ``repro chaos`` invocation."""

    seed: int
    fast: bool
    scenarios: List[LiveScenarioOutcome]

    @property
    def ok(self) -> bool:
        return all(scenario.ok for scenario in self.scenarios)

    @property
    def counters(self) -> Dict[str, int]:
        merged = {name: 0 for name in LIVE_COUNTER_NAMES}
        for scenario in self.scenarios:
            for name, value in scenario.counters.items():
                merged[name] = merged.get(name, 0) + value
        return merged

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "fast": self.fast,
            "ok": self.ok,
            "counters": self.counters,
            "scenarios": [{
                "name": s.name,
                "description": s.description,
                "plan": s.plan,
                "ok": s.ok,
                "elapsed_s": s.elapsed_s,
                "fingerprint": s.fingerprint,
                "counters": s.counters,
                "detail": s.detail,
            } for s in self.scenarios],
        }

    def render(self) -> str:
        lines = [f"Live chaos report (seed {self.seed})",
                 "=" * 52]
        for s in self.scenarios:
            verdict = "PASS" if s.ok else "FAIL"
            lines.append("")
            lines.append(f"[{verdict}] {s.name}: {s.description}")
            if s.plan:
                lines.append(f"  plan: {s.plan}")
            if s.fingerprint:
                lines.append(f"  schedule fingerprint: {s.fingerprint}")
            lines.append(f"  elapsed: {s.elapsed_s:.1f} s")
            if s.detail:
                lines.append(f"  {s.detail}")
            hot = {name: value for name, value in s.counters.items()
                   if value}
            lines.append("  counters: " + (", ".join(
                f"{name}={value}" for name, value in sorted(hot.items()))
                or "(none)"))
        lines.append("")
        lines.append("totals: " + (", ".join(
            f"{name}={value}"
            for name, value in sorted(self.counters.items()) if value)
            or "(none)"))
        lines.append(f"overall: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


class ChaosCounter(AmberObject):
    """Minimal stateful probe object for the dedup/failure scenarios."""

    def __init__(self):
        self.count = 0

    def add(self, amount=1):
        self.count += amount
        return self.count

    def get(self):
        return self.count


@contextmanager
def _peer_timeout(seconds: float):
    """Pin REPRO_PEER_TIMEOUT_S for one scenario (and its forked node
    processes — set it *before* the Cluster spawns them)."""
    import os

    old = os.environ.get(PEER_TIMEOUT_ENV)
    os.environ[PEER_TIMEOUT_ENV] = str(seconds)
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(PEER_TIMEOUT_ENV, None)
        else:
            os.environ[PEER_TIMEOUT_ENV] = old


def _gather_counters(cluster) -> Dict[str, int]:
    """Sum the hardening/chaos counters over every reachable node."""
    merged = {name: 0 for name in LIVE_COUNTER_NAMES}
    for node in range(cluster.num_nodes):
        try:
            stats = cluster.node_stats(node)
        except Exception:
            continue        # a node may (legitimately) be dead
        for name in LIVE_COUNTER_NAMES:
            merged[name] += int(stats.get(name, 0))
    merged["coordinator_reconnects"] += int(
        cluster._client.stats.get("coordinator_reconnects", 0))
    return merged


def run_chaos_scenarios(seed: int = 0, fast: bool = False) -> ChaosReport:
    """Run every live chaos scenario under ``seed``."""
    scenarios = [
        _guard("live-sor", _run_live_sor_chaos, seed, fast),
        _guard("live-queens", _run_live_queens_chaos, seed, fast),
        _guard("dedup", _run_dedup_probe, seed, fast),
        _guard("typed-failures", _run_typed_failure, seed, fast),
        _guard("coordinator-outage", _run_coordinator_outage, seed, fast),
    ]
    return ChaosReport(seed=seed, fast=fast, scenarios=scenarios)


def _guard(name: str, fn: Callable[[int, bool], LiveScenarioOutcome],
           seed: int, fast: bool) -> LiveScenarioOutcome:
    """A scenario that crashes is a FAIL verdict, not a dead suite."""
    t0 = time.monotonic()
    try:
        return fn(seed, fast)
    except Exception as error:
        return LiveScenarioOutcome(
            name=name, description="(crashed before its verdict)",
            plan="", ok=False, elapsed_s=time.monotonic() - t0,
            fingerprint="", counters={},
            detail=f"crashed: {type(error).__name__}: {error}")


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------


def _sor_plan(seed: int) -> FaultPlan:
    """Loss + dup + delay + connection-resets, and a kill-and-restart of
    the bystander node 2 while the workload runs on nodes 0-1."""
    return FaultPlan(
        seed=seed,
        drop_rate=0.02,
        dup_rate=0.02,
        delay_rate=0.03,
        reorder_rate=0.01,      # live semantics: connection reset
        delay_min_us=1_000.0,
        delay_max_us=20_000.0,
        crashes=(NodeCrash(node=2, at_us=400_000.0,
                           restart_us=1_200_000.0),),
    )


def _run_live_sor_chaos(seed: int, fast: bool) -> LiveScenarioOutcome:
    import numpy as np

    from repro.apps.sor.grid import SorProblem
    from repro.apps.sor.live_sor import run_live_sor
    from repro.runtime.cluster import Cluster

    problem = (SorProblem(rows=8, cols=24, iterations=3) if fast
               else SorProblem(rows=12, cols=32, iterations=5))
    workers, total_nodes = 2, 3      # node 2 holds no objects: the victim
    plan = _sor_plan(seed)
    fingerprint = schedule_fingerprint(plan, total_nodes)
    # Determinism of the chaos schedule itself: an independently rebuilt
    # plan with the same seed must produce the same decision table.
    stable = fingerprint == schedule_fingerprint(_sor_plan(seed),
                                                 total_nodes)

    t0 = time.monotonic()
    with _peer_timeout(6.0):
        clean = run_live_sor(problem, nodes=workers)
        with Cluster(nodes=total_nodes, chaos=plan) as cluster:
            controller = cluster.start_chaos()
            faulted = run_live_sor(problem, nodes=workers,
                                   cluster=cluster)
            controller.join(timeout=30.0)
            controller.stop()
            # The victim was killed and restarted; the replacement must
            # re-register and answer again (suspicion retracted, its
            # circuit breaker probed shut).
            revived = False
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                try:
                    cluster.node_stats(2)
                    revived = True
                    break
                except Exception:
                    time.sleep(0.2)
            counters = _gather_counters(cluster)
            kills, restarts = controller.kills, controller.restarts
    correct = bool(np.array_equal(clean, faulted))
    ok = (correct and stable and kills == 1 and restarts == 1
          and revived)
    return LiveScenarioOutcome(
        name="live-sor",
        description=(f"live SOR {problem.rows}x{problem.cols}, "
                     f"{problem.iterations} iterations on {workers} "
                     f"worker nodes + 1 victim"),
        plan=plan.describe(),
        ok=ok,
        elapsed_s=time.monotonic() - t0,
        fingerprint=fingerprint,
        counters=counters,
        detail=(f"grid {'bit-identical to' if correct else 'DIVERGED from'}"
                f" clean run; kills={kills} restarts={restarts} "
                f"victim revived={revived} schedule stable={stable}"))


def _queens_plan(seed: int) -> FaultPlan:
    return FaultPlan(
        seed=seed + 1,
        drop_rate=0.03,
        dup_rate=0.05,          # the exactly-once stressor
        delay_rate=0.02,
        reorder_rate=0.02,
        delay_min_us=500.0,
        delay_max_us=10_000.0,
    )


def _run_live_queens_chaos(seed: int, fast: bool) -> LiveScenarioOutcome:
    from repro.apps.live_queens import run_live_queens
    from repro.apps.queens import KNOWN_SOLUTIONS
    from repro.runtime.cluster import Cluster

    n = 6 if fast else 7
    nodes = 3
    plan = _queens_plan(seed)
    fingerprint = schedule_fingerprint(plan, nodes)
    t0 = time.monotonic()
    with _peer_timeout(6.0):
        with Cluster(nodes=nodes, chaos=plan) as cluster:
            solutions, units, total = run_live_queens(
                n, nodes=nodes, pool_node=1, cluster=cluster)
            counters = _gather_counters(cluster)
    correct = solutions == KNOWN_SOLUTIONS[n] and units == total
    return LiveScenarioOutcome(
        name="live-queens",
        description=f"live {n}-Queens work pool on {nodes} nodes",
        plan=plan.describe(),
        ok=correct,
        elapsed_s=time.monotonic() - t0,
        fingerprint=fingerprint,
        counters=counters,
        detail=(f"{solutions} solutions (expected {KNOWN_SOLUTIONS[n]}), "
                f"{units}/{total} work units reported exactly once; "
                f"{counters['chaos_duplicated']} duplicate frame(s), "
                f"{counters['chaos_dropped']} dropped"))


def _run_dedup_probe(seed: int, fast: bool) -> LiveScenarioOutcome:
    from repro.runtime import messages as m
    from repro.runtime.cluster import Cluster

    t0 = time.monotonic()
    with _peer_timeout(6.0), Cluster(nodes=2) as cluster:
        handle = cluster.create(ChaosCounter, node=1)
        kernel = cluster.kernel
        request_id = next(kernel._request_ids)
        message = m.InvokeMsg(request_id, 0, handle.vaddr, "add", (1,),
                              {}, trace=(0,))
        # A byte-identical duplicate pair, as the chaos layer's
        # duplicate fault would produce on the wire.
        kernel.mesh.send(1, message)
        kernel.mesh.send(1, message)
        value = 0
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and value < 1:
            value = cluster.call(handle, "get")
            if value < 1:
                time.sleep(0.05)
        time.sleep(0.3)     # give the twin time to (wrongly) execute
        final = cluster.call(handle, "get")
        stats = cluster.node_stats(1)
        suppressed = (stats.get("dedup_in_flight", 0)
                      + stats.get("dedup_replayed", 0))
        counters = _gather_counters(cluster)
    ok = final == 1 and suppressed >= 1
    return LiveScenarioOutcome(
        name="dedup",
        description="byte-identical duplicate InvokeMsg pair, one node",
        plan="",
        ok=ok,
        elapsed_s=time.monotonic() - t0,
        fingerprint="",
        counters=counters,
        detail=(f"counter={final} (want 1: at-most-once), "
                f"suppressed twins={suppressed}"))


def _run_typed_failure(seed: int, fast: bool) -> LiveScenarioOutcome:
    from repro.errors import NodeFailure
    from repro.runtime.cluster import Cluster

    t0 = time.monotonic()
    with _peer_timeout(2.0), Cluster(nodes=3) as cluster:
        handle = cluster.create(ChaosCounter, node=2)
        warm = cluster.call(handle, "add", 1)
        cluster.kill_node(2)
        # First caller: blocked mid-ladder until the failure detector's
        # verdict lands, then typed — and well inside the deadline.
        t_first = time.monotonic()
        first_error = _expect_failure(cluster, handle)
        first_s = time.monotonic() - t_first
        # Second caller: the breaker is open now; near-instant fail.
        t_second = time.monotonic()
        second_error = _expect_failure(cluster, handle)
        second_s = time.monotonic() - t_second
        stats = cluster.kernel._stats_snapshot()
        fast_fails = stats.get("circuit_fast_fails", 0)
        counters = _gather_counters(cluster)
    typed = (isinstance(first_error, (NodeFailure, TimeoutError))
             and isinstance(second_error, (NodeFailure, TimeoutError)))
    # reply deadline is 4 x REPRO_PEER_TIMEOUT_S = 8 s here.
    bounded = first_s < 9.0 and second_s < 1.0
    ok = (warm == 1 and typed and bounded and fast_fails >= 1)
    return LiveScenarioOutcome(
        name="typed-failures",
        description="SIGKILL a peer, no restart: bounded typed errors",
        plan="",
        ok=ok,
        elapsed_s=time.monotonic() - t0,
        fingerprint="",
        counters=counters,
        detail=(f"first failure {type(first_error).__name__} in "
                f"{first_s:.2f}s, then {type(second_error).__name__} in "
                f"{second_s:.3f}s with breaker open "
                f"(fast-fails={fast_fails})"))


def _expect_failure(cluster, handle):
    try:
        cluster.call(handle, "get")
    except Exception as error:
        return error
    return None


def _run_coordinator_outage(seed: int, fast: bool) -> LiveScenarioOutcome:
    from repro.errors import ClusterError
    from repro.runtime.cluster import Cluster
    from repro.runtime.coordinator import Coordinator

    t0 = time.monotonic()
    with _peer_timeout(8.0), Cluster(nodes=2) as cluster:
        handle = cluster.create(ChaosCounter, node=1)
        warm = cluster.call(handle, "add", 1)
        old = cluster._coordinator
        port = old.address[1]
        old.close()
        # In-flight control-plane traffic during the outage: typed, not
        # a deadlock.
        try:
            cluster._client.query_region(1 << 40)
            typed_outage = False
        except ClusterError:
            typed_outage = True
        # A successor adopts the port and the address-space state.  The
        # rebind can transiently race the old incarnation's sockets
        # draining out of the kernel; retry briefly.
        successor = None
        deadline = time.monotonic() + 5.0
        while successor is None:
            try:
                successor = Coordinator(cluster.num_nodes,
                                        cluster._region_bytes,
                                        port=port, server=old.server)
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.1)
        cluster._coordinator = successor
        reregistered = _await_condition(
            lambda: len(successor._registered) >= cluster.num_nodes, 20.0)
        heartbeats = _await_condition(
            lambda: len(successor._last_heard) >= cluster.num_nodes, 15.0)
        reconnects = cluster._client.stats["coordinator_reconnects"]
        # The data plane survived, and new grants don't collide with the
        # old incarnation's (adopted server).
        value = cluster.call(handle, "add", 1)
        fresh = cluster.create(ChaosCounter, node=1)
        fresh_value = cluster.call(fresh, "add", 5)
        counters = _gather_counters(cluster)
    ok = (warm == 1 and typed_outage and reregistered and heartbeats
          and reconnects >= 1 and value == 2 and fresh_value == 5)
    return LiveScenarioOutcome(
        name="coordinator-outage",
        description="coordinator killed and restarted on its port",
        plan="",
        ok=ok,
        elapsed_s=time.monotonic() - t0,
        fingerprint="",
        counters=counters,
        detail=(f"typed during outage={typed_outage}, "
                f"re-registered={reregistered}, heartbeats "
                f"resumed={heartbeats}, client reconnects={reconnects}, "
                f"post-outage invokes ok={value == 2 and fresh_value == 5}"))


def _await_condition(probe: Callable[[], bool], timeout_s: float) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            if probe():
                return True
        except Exception:
            pass
        time.sleep(0.1)
    return False
