"""The fault injector: turns a :class:`~repro.faults.plan.FaultPlan`
into per-message decisions, deterministically.

One injector is bound to one run (it owns the seeded PRNG and the
metrics counters).  The simulated Ethernet consults :meth:`decide` once
per transmission attempt; crash state is read from the live cluster (a
callable installed by :class:`~repro.sim.cluster.SimCluster`) so that
manually induced crashes — e.g. tests driving
``AmberKernel._crash_node`` directly — are honored exactly like planned
ones.

Counters fed into the run's :class:`~repro.obs.metrics.MetricsRegistry`:

``faults_injected``
    Every non-clean outcome (drop, duplicate, delay, reorder,
    crash-drop, partition-drop).
``faults_dropped`` / ``faults_duplicated`` / ``faults_delayed``
    Per-kind breakdown of random message faults.
``faults_crash_drops`` / ``faults_partition_drops``
    Messages lost to a dead endpoint or a severed link.
``retries``
    Retransmissions performed by the reliable-delivery layer.
``send_give_ups``
    Reliable sends that exhausted every retransmission.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Callable, Optional

from repro.faults.plan import FaultPlan
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class Decision:
    """Outcome of one transmission attempt."""

    drop: bool = False
    duplicate: bool = False
    extra_delay_us: float = 0.0


_CLEAN = Decision()
_DROP = Decision(drop=True)


class FaultInjector:
    """Per-run fault state: seeded PRNG + counters."""

    def __init__(self, plan: FaultPlan,
                 metrics: Optional[MetricsRegistry] = None,
                 is_down: Optional[Callable[[int], bool]] = None):
        self.plan = plan
        self._rng = Random(plan.seed)
        self._metrics = metrics if metrics is not None else MetricsRegistry()
        #: Live crash predicate (node id -> down?); defaults to the
        #: plan's schedule evaluated at the decision time.
        self._is_down = is_down
        self.max_attempts = plan.max_attempts

    # -- decisions ---------------------------------------------------------

    def node_down(self, node: int, now_us: float) -> bool:
        if self._is_down is not None:
            return self._is_down(node)
        return self.plan.is_down(node, now_us)

    def decide(self, src: int, dst: int, now_us: float) -> Decision:
        """Fate of one transmission attempt from ``src`` to ``dst``.

        Crash and partition drops are checked first and consume no
        randomness, so the PRNG stream depends only on the sequence of
        live-link transmissions — identical across reruns.
        """
        plan = self.plan
        if self.node_down(src, now_us) or self.node_down(dst, now_us):
            self._count("faults_crash_drops")
            return _DROP
        if plan.partitioned(src, dst, now_us):
            self._count("faults_partition_drops")
            return _DROP
        if not (plan.drop_rate or plan.dup_rate or plan.delay_rate
                or plan.reorder_rate):
            return _CLEAN
        roll = self._rng.random()
        if roll < plan.drop_rate:
            self._count("faults_dropped")
            return _DROP
        roll -= plan.drop_rate
        if roll < plan.dup_rate:
            self._count("faults_duplicated")
            return Decision(duplicate=True)
        roll -= plan.dup_rate
        if roll < plan.delay_rate:
            self._count("faults_delayed")
            span = plan.delay_max_us - plan.delay_min_us
            return Decision(extra_delay_us=plan.delay_min_us
                            + span * self._rng.random())
        roll -= plan.delay_rate
        if roll < plan.reorder_rate:
            self._count("faults_delayed")
            # Enough slip for later traffic to overtake, well under the
            # retransmission timeout.
            return Decision(
                extra_delay_us=0.5 * plan.rto_us * self._rng.random())
        return _CLEAN

    # -- reliable-layer bookkeeping ---------------------------------------

    def rto_us(self, attempt: int) -> float:
        """Retransmission timeout after attempt ``attempt`` (1-based):
        exponential backoff, capped."""
        return min(self.plan.rto_us * 2 ** (attempt - 1),
                   self.plan.rto_cap_us)

    def count_retry(self) -> None:
        self._metrics.inc("retries")

    def count_give_up(self) -> None:
        self._metrics.inc("send_give_ups")

    def _count(self, kind: str) -> None:
        self._metrics.inc("faults_injected")
        self._metrics.inc(kind)
