"""Seeded, deterministic fault plans for simulated runs.

A :class:`FaultPlan` is pure configuration: message-level fault rates
(drop / duplicate / delay / reorder), node crash-and-restart events, and
network partition windows.  It contains no mutable state, so the same
plan object can parameterize any number of runs; all randomness lives in
the :class:`~repro.faults.inject.FaultInjector`, which draws from a
``random.Random(seed)`` in simulation-event order.  Because the
discrete-event engine is itself deterministic (equal timestamps resolve
by scheduling order), two runs of the same program under the same plan
are bit-identical — same results, same final simulated clock, same
metric counters.

Fault semantics (see ``docs/FAULTS.md`` for the full model):

* **drop** — the message occupies the wire but never arrives.
* **duplicate** — the message arrives twice; the reliable-delivery layer
  (:meth:`repro.sim.network.Ethernet.send_reliable`) suppresses the copy.
* **delay** — delivery is postponed by a uniform draw from
  ``[delay_min_us, delay_max_us]``.
* **reorder** — sugar for a short delay (up to half an RTO) that lets
  later messages overtake this one.
* **crash** — the node's network interface goes silent and its CPUs stop
  dispatching at ``at_us``; at ``restart_us`` (if any) the node rejoins,
  having lost its volatile location hints (chain repair).
* **partition** — messages crossing the partition boundary are dropped
  for the window's duration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import SimulationError


@dataclass(frozen=True)
class NodeCrash:
    """Fail-stop ``node`` at ``at_us``; bring it back at ``restart_us``
    (``None`` = the node never returns)."""

    node: int
    at_us: float
    restart_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise SimulationError(f"crash time must be >= 0: {self}")
        if self.restart_us is not None and self.restart_us <= self.at_us:
            raise SimulationError(
                f"restart must come after the crash: {self}")

    def down_at(self, now_us: float) -> bool:
        if now_us < self.at_us:
            return False
        return self.restart_us is None or now_us < self.restart_us


@dataclass(frozen=True)
class Partition:
    """Split ``nodes`` from the rest of the cluster during
    ``[start_us, end_us)``.  Traffic within either side still flows."""

    nodes: Tuple[int, ...]
    start_us: float
    end_us: float

    def __post_init__(self) -> None:
        if self.end_us <= self.start_us:
            raise SimulationError(f"empty partition window: {self}")
        if not self.nodes:
            raise SimulationError("a partition needs at least one node")

    def severs(self, src: int, dst: int, now_us: float) -> bool:
        if not self.start_us <= now_us < self.end_us:
            return False
        return (src in self.nodes) != (dst in self.nodes)


@dataclass(frozen=True)
class FaultPlan:
    """Everything that can go wrong in one run, decided by ``seed``."""

    seed: int = 0
    #: Per-message probabilities; their sum must stay <= 1.
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    reorder_rate: float = 0.0
    #: Uniform extra-delay bounds for delayed messages, microseconds.
    delay_min_us: float = 0.0
    delay_max_us: float = 0.0
    crashes: Tuple[NodeCrash, ...] = ()
    partitions: Tuple[Partition, ...] = ()
    #: Base retransmission timeout of the reliable layer; doubles per
    #: attempt up to ``rto_cap_us``.
    rto_us: float = 1_000.0
    rto_cap_us: float = 64_000.0
    #: Retransmissions before the sender declares the destination dead.
    max_attempts: int = 16

    def __post_init__(self) -> None:
        for name in ("drop_rate", "dup_rate", "delay_rate",
                     "reorder_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise SimulationError(f"{name} must be in [0, 1]: {rate}")
        total = (self.drop_rate + self.dup_rate + self.delay_rate
                 + self.reorder_rate)
        if total > 1.0 + 1e-12:
            raise SimulationError(
                f"fault rates sum to {total}, which exceeds 1")
        if self.delay_max_us < self.delay_min_us or self.delay_min_us < 0:
            raise SimulationError(
                f"bad delay bounds: [{self.delay_min_us}, "
                f"{self.delay_max_us}]")
        if self.rto_us <= 0 or self.rto_cap_us < self.rto_us:
            raise SimulationError(
                f"bad RTO configuration: rto_us={self.rto_us}, "
                f"rto_cap_us={self.rto_cap_us}")
        if self.max_attempts < 1:
            raise SimulationError(
                f"max_attempts must be >= 1: {self.max_attempts}")
        # The plan is hashable config; normalize accidental lists.
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "partitions", tuple(self.partitions))

    # -- queries ----------------------------------------------------------

    @property
    def has_faults(self) -> bool:
        return bool(self.drop_rate or self.dup_rate or self.delay_rate
                    or self.reorder_rate or self.crashes or self.partitions)

    def is_down(self, node: int, now_us: float) -> bool:
        return any(crash.node == node and crash.down_at(now_us)
                   for crash in self.crashes)

    def partitioned(self, src: int, dst: int, now_us: float) -> bool:
        return any(window.severs(src, dst, now_us)
                   for window in self.partitions)

    def give_up_budget_us(self) -> float:
        """Simulated time the reliable layer spends before declaring a
        destination dead (the sum of all backoff steps)."""
        return sum(min(self.rto_us * 2 ** k, self.rto_cap_us)
                   for k in range(self.max_attempts))

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for name in ("drop_rate", "dup_rate", "delay_rate", "reorder_rate"):
            rate = getattr(self, name)
            if rate:
                parts.append(f"{name.replace('_rate', '')}={rate:.1%}")
        for crash in self.crashes:
            back = ("never" if crash.restart_us is None
                    else f"{crash.restart_us / 1000:.0f}ms")
            parts.append(f"crash(node {crash.node} @ "
                         f"{crash.at_us / 1000:.0f}ms, back {back})")
        for window in self.partitions:
            parts.append(f"partition({list(window.nodes)} @ "
                         f"{window.start_us / 1000:.0f}-"
                         f"{window.end_us / 1000:.0f}ms)")
        return ", ".join(parts)
