"""Seeded chaos for the *live* runtime: per-frame fault decisions over
real sockets, plus a controller that kills and restarts node processes.

The simulator's :class:`~repro.faults.plan.FaultPlan` is reused verbatim
— same rates, same crash/partition schedule — but the live semantics
differ where TCP makes them differ:

* **drop** — the frame is consumed by the chaos layer and never reaches
  the wire (the sender believes it was sent; the hardened request layer
  recovers by re-sending, see ``docs/CHAOS.md``).
* **duplicate** — the frame is written twice; the receiving kernel's
  at-most-once dedup suppresses the second execution.
* **delay** — the sending thread sleeps ``[delay_min_us, delay_max_us]``
  before the write.
* **reorder → reset** — TCP cannot reorder within a connection, so the
  reorder budget is spent on the live network's own failure mode: the
  current connection is poisoned with a *truncated frame* and torn down,
  forcing the receiver through its broken-frame path and the sender
  through redial/backoff.
* **partition** — frames crossing the window's boundary are dropped for
  its duration (wall-clock, measured from the injector's start).
* **crash** — :class:`ChaosController` SIGKILLs the node's OS process at
  ``at_us`` (wall-clock from :meth:`ChaosController.start`) and forks a
  replacement at ``restart_us``; the replacement re-registers with the
  coordinator, which rebroadcasts the directory to the survivors.

Determinism: a decision is a *pure function* of ``(seed, src, dst,
seq)`` where ``seq`` is the per-link frame ordinal — no shared PRNG
stream, so thread interleavings across links cannot perturb each
other's fates.  :func:`schedule_fingerprint` digests the decision table
itself, which is what ``repro chaos`` asserts is stable per seed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from hashlib import sha256
from random import Random
from typing import Dict, Optional

from repro.faults.plan import FaultPlan

#: Mixing constants for the per-decision PRNG seed (primes, so distinct
#: (src, dst, seq) triples land on distinct streams).
_MIX_A = 1_000_003
_MIX_B = 8_191


@dataclass(frozen=True)
class LiveDecision:
    """Fate of one outbound frame."""

    drop: bool = False
    duplicate: bool = False
    reset: bool = False
    delay_s: float = 0.0
    partition: bool = False


_CLEAN = LiveDecision()


def decide_frame(plan: FaultPlan, src: int, dst: int, seq: int,
                 now_us: float = 0.0) -> LiveDecision:
    """Pure per-frame decision: same ``(plan.seed, src, dst, seq)`` →
    same fate, regardless of thread timing.  ``now_us`` only matters for
    partition windows."""
    if plan.partitioned(src, dst, now_us):
        return LiveDecision(drop=True, partition=True)
    rng = Random((plan.seed * _MIX_A + src) * _MIX_A
                 + dst * _MIX_B + seq)
    draw = rng.random()
    edge = plan.drop_rate
    if draw < edge:
        return LiveDecision(drop=True)
    edge += plan.dup_rate
    if draw < edge:
        return LiveDecision(duplicate=True)
    edge += plan.delay_rate
    if draw < edge:
        return LiveDecision(delay_s=rng.uniform(
            plan.delay_min_us, plan.delay_max_us) / 1e6)
    edge += plan.reorder_rate
    if draw < edge:
        return LiveDecision(reset=True)
    return _CLEAN


def schedule_fingerprint(plan: FaultPlan, nodes: int,
                         frames: int = 256) -> str:
    """Digest of the first ``frames`` per-link decisions for every
    directed link of an ``nodes``-node cluster.  Pure function of the
    plan — two runs with the same seed share it by construction."""
    digest = sha256()
    digest.update(plan.describe().encode())
    for src in range(nodes):
        for dst in range(nodes):
            if src == dst:
                continue
            for seq in range(frames):
                decision = decide_frame(plan, src, dst, seq)
                digest.update(bytes((
                    decision.drop, decision.duplicate, decision.reset)))
                digest.update(f"{decision.delay_s:.9f}".encode())
    return digest.hexdigest()[:16]


class LiveFaultInjector:
    """Per-node chaos state: per-link frame counters + wall clock.

    One injector is attached to one :class:`~repro.runtime.transport.Mesh`
    (``Mesh(..., chaos=injector)``) and consulted once per outbound
    frame.  All mutability is the per-link ordinal and the counters;
    fates themselves come from :func:`decide_frame`.
    """

    def __init__(self, plan: FaultPlan, node: int):
        self.plan = plan
        self.node = node
        self._lock = threading.Lock()
        self._seq: Dict[int, int] = {}
        self._start = time.monotonic()
        self.stats: Dict[str, int] = {
            "chaos_frames": 0,
            "chaos_dropped": 0,
            "chaos_duplicated": 0,
            "chaos_delayed": 0,
            "chaos_resets": 0,
            "chaos_partition_drops": 0,
        }

    def now_us(self) -> float:
        return (time.monotonic() - self._start) * 1e6

    def on_send(self, dst: int, message: object) -> LiveDecision:
        """Decide the fate of one frame from this node to ``dst``."""
        with self._lock:
            seq = self._seq.get(dst, 0)
            self._seq[dst] = seq + 1
            self.stats["chaos_frames"] += 1
        decision = decide_frame(self.plan, self.node, dst, seq,
                                self.now_us())
        with self._lock:
            if decision.partition:
                self.stats["chaos_partition_drops"] += 1
            elif decision.drop:
                self.stats["chaos_dropped"] += 1
            if decision.duplicate:
                self.stats["chaos_duplicated"] += 1
            if decision.delay_s:
                self.stats["chaos_delayed"] += 1
            if decision.reset:
                self.stats["chaos_resets"] += 1
        return decision


class ChaosController:
    """Executes a plan's :class:`~repro.faults.plan.NodeCrash` entries
    against a live :class:`~repro.runtime.cluster.Cluster`.

    ``at_us``/``restart_us`` are interpreted as wall-clock microseconds
    after :meth:`start`.  Only non-driver nodes (id >= 1) can be killed;
    the driver hosts the coordinator.  Kills are SIGKILL — no goodbye
    frames, exactly the fail-stop model of the simulator.
    """

    def __init__(self, cluster, plan: FaultPlan):
        self._cluster = cluster
        self._plan = plan
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.kills = 0
        self.restarts = 0

    def start(self) -> "ChaosController":
        events = []
        for crash in self._plan.crashes:
            if crash.node < 1:
                raise ValueError(
                    f"cannot kill the driver node: {crash}")
            events.append((crash.at_us, "kill", crash.node))
            if crash.restart_us is not None:
                events.append((crash.restart_us, "restart", crash.node))
        events.sort()
        self._thread = threading.Thread(
            target=self._run, args=(events,), daemon=True,
            name="chaos-controller")
        self._thread.start()
        return self

    def _run(self, events) -> None:
        t0 = time.monotonic()
        for at_us, action, node in events:
            delay = at_us / 1e6 - (time.monotonic() - t0)
            if delay > 0 and self._stop.wait(delay):
                return
            if self._stop.is_set():
                return
            if action == "kill":
                self._cluster.kill_node(node)
                self.kills += 1
            else:
                self._cluster.restart_node(node)
                self.restarts += 1

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for every scheduled kill/restart to have fired."""
        if self._thread is not None:
            self._thread.join(timeout)
