"""Fault injection and recovery for simulated Amber runs.

The paper's location protocol (section 4.2) is built for staleness —
forwarding chains with a home-node fallback — but only degraded networks
actually exercise it.  This package supplies the degradation: a seeded,
deterministic :class:`FaultPlan` (message drop / duplicate / delay /
reorder, node crash + restart, partition windows), the
:class:`FaultInjector` that the simulated Ethernet consults per
transmission, and ready-made scenarios with a recovery report
(``python -m repro faults``).

Quick use::

    from repro.faults import FaultPlan, NodeCrash
    from repro.sim.program import run_program

    plan = FaultPlan(seed=7, drop_rate=0.05,
                     crashes=(NodeCrash(node=1, at_us=50_000,
                                        restart_us=150_000),))
    result = run_program(main, nodes=4, faults=plan)

See ``docs/FAULTS.md`` for the fault model and determinism guarantees.
"""

from repro.faults.inject import Decision, FaultInjector
from repro.faults.plan import FaultPlan, NodeCrash, Partition

__all__ = [
    "Decision",
    "FaultInjector",
    "FaultPlan",
    "NodeCrash",
    "Partition",
]
