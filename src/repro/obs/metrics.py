"""Metrics primitives: counters, gauges, and log-scale latency histograms.

The simulation's flat counters (:class:`repro.sim.stats.ClusterStats`) say
*how many* remote invocations a run made; they cannot say whether the p99
invocation took 3 ms or 300 ms.  This module provides the distributional
half of the story:

* :class:`Counter` — a monotonically increasing count.
* :class:`Gauge` — a sampled level (network queue depth, ready-queue
  length); remembers the last value, the max, and the mean of samples.
* :class:`LatencyHistogram` — log-scale buckets with exact ``count``,
  ``sum``, ``min``, ``max`` and quantile estimates (p50/p90/p99).  Buckets
  grow geometrically, so a single histogram spans nanoseconds to minutes
  in ~100 buckets with bounded (~12%) relative quantile error.
* :class:`MetricsRegistry` — names -> instruments, with ``as_dict()`` for
  machine-readable export and ``merge()`` for multi-run aggregation.

Everything here is plain arithmetic on dicts: safe to leave enabled on
every simulated run.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

#: Geometric bucket growth factor: 4 buckets per decade (~12% resolution).
_BUCKET_BASE = 10 ** 0.25


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {n}")
        self.value += n

    def merge(self, other: "Counter") -> None:
        self.value += other.value


class Gauge:
    """A sampled level.  ``set`` records an observation; the gauge keeps
    the latest value plus max/mean across all samples."""

    __slots__ = ("name", "value", "max", "samples", "_sum")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.max = 0.0
        self.samples = 0
        self._sum = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.max = max(self.max, self.value)
        self.samples += 1
        self._sum += self.value

    @property
    def mean(self) -> float:
        return self._sum / self.samples if self.samples else 0.0

    def merge(self, other: "Gauge") -> None:
        self.value = other.value
        self.max = max(self.max, other.max)
        self.samples += other.samples
        self._sum += other._sum


class LatencyHistogram:
    """Log-scale histogram of non-negative values (latencies, lengths).

    Values land in geometric buckets; quantiles are estimated as the
    upper bound of the bucket containing the requested rank, so reported
    percentiles are conservative (never under the true value by more than
    one bucket's width).  Zero values get a dedicated bucket.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0
        #: bucket index -> count; index -(2**30) holds exact zeros.
        self.buckets: Dict[int, int] = {}

    _ZERO_BUCKET = -(2 ** 30)

    @staticmethod
    def _index(value: float) -> int:
        if value <= 0:
            return LatencyHistogram._ZERO_BUCKET
        return math.ceil(math.log(value, _BUCKET_BASE))

    @staticmethod
    def _upper_bound(index: int) -> float:
        if index == LatencyHistogram._ZERO_BUCKET:
            return 0.0
        return _BUCKET_BASE ** index

    def observe(self, value: float) -> None:
        value = float(value)
        if value < 0:
            raise ValueError(
                f"histogram {self.name} got negative value {value}")
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        index = self._index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile (``p`` in [0, 100])."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return 0.0
        rank = math.ceil(self.count * p / 100.0)
        rank = max(1, min(rank, self.count))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                # Clamp to the exactly-tracked extremes.
                return min(max(self._upper_bound(index),
                               0.0 if self.min is math.inf else self.min),
                           self.max)
        return self.max  # pragma: no cover - unreachable

    def merge(self, other: "LatencyHistogram") -> None:
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": round(self.mean, 3),
            "min": 0.0 if self.min is math.inf else round(self.min, 3),
            "p50": round(self.percentile(50), 3),
            "p90": round(self.percentile(90), 3),
            "p99": round(self.percentile(99), 3),
            "max": round(self.max, 3),
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms for one run (or, after
    :meth:`merge`, for an aggregate of runs)."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, LatencyHistogram] = {}

    # -- instrument access (created on first use) -----------------------

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> LatencyHistogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = LatencyHistogram(name)
        return instrument

    # -- convenience shorthands -----------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def sample(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    # -- aggregation and export ------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (in place); returns self."""
        for name, counter in other.counters.items():
            self.counter(name).merge(counter)
        for name, gauge in other.gauges.items():
            self.gauge(name).merge(gauge)
        for name, histogram in other.histograms.items():
            self.histogram(name).merge(histogram)
        return self

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot: every histogram reports p50/p90/p99."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self.counters.items())},
            "gauges": {name: {"last": g.value, "max": g.max,
                              "mean": round(g.mean, 3)}
                       for name, g in sorted(self.gauges.items())},
            "histograms": {name: h.summary()
                           for name, h in sorted(self.histograms.items())},
        }

    def render(self, title: Optional[str] = None) -> str:
        """Human-readable dump of the registry (histograms first)."""
        lines: List[str] = []
        if title:
            lines.append(title)
        if self.histograms:
            header = (f"{'histogram':<28} {'count':>8} {'mean':>10} "
                      f"{'p50':>10} {'p90':>10} {'p99':>10} {'max':>10}")
            lines.append(header)
            lines.append("-" * len(header))
            for name in sorted(self.histograms):
                s = self.histograms[name].summary()
                lines.append(
                    f"{name:<28} {s['count']:>8} {s['mean']:>10.2f} "
                    f"{s['p50']:>10.2f} {s['p90']:>10.2f} "
                    f"{s['p99']:>10.2f} {s['max']:>10.2f}")
        for name in sorted(self.counters):
            lines.append(f"{name:<28} {self.counters[name].value}")
        for name in sorted(self.gauges):
            gauge = self.gauges[name]
            lines.append(f"{name:<28} last={gauge.value:g} "
                         f"max={gauge.max:g} mean={gauge.mean:.2f}")
        return "\n".join(lines) if lines else "(no metrics)"


def merge_registries(registries: Iterable[MetricsRegistry]
                     ) -> MetricsRegistry:
    """Aggregate several runs' registries into a fresh one."""
    merged = MetricsRegistry()
    for registry in registries:
        merged.merge(registry)
    return merged
