"""Per-thread time attribution and critical-path profiling.

The paper explains performance by decomposing where threads spend their
time — computing, migrating between nodes, queued behind busy CPUs, or
waiting on locks.  This module produces that decomposition for any
simulated run, from either of two sources:

* :func:`profile_result` — exact accounting from the kernel's per-thread
  state clocks (every :class:`~repro.sim.thread.SimThread` accumulates
  time per scheduling state as it transitions); no tracer needed.
* :func:`analyze_trace` — the same bucket shape reconstructed from a
  trace-event stream (``compute`` slices, ``migrate-out``/``migrate-in``
  pairs, ``ready``/``run``/``block`` transitions), for offline traces.

Buckets:

``compute``
    On a CPU: user compute plus kernel work charged to the thread.
``migration``
    In transit between nodes (marshal/wire/forwarding hops).
``queue``
    Runnable but waiting for a CPU.
``lock-wait``
    Blocked on a synchronization object (lock, monitor, condvar,
    barrier, reader/writer lock).
``blocked``
    Blocked for any other reason (join, sleep, application waits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

BUCKETS = ("compute", "migration", "queue", "lock-wait", "blocked")

#: Suspend reasons classified as lock waiting.
LOCK_WAIT_REASONS = frozenset({
    "lock", "spinlock", "monitor", "condvar", "barrier",
    "rwlock-read", "rwlock-write",
})

#: Thread scheduling-state value -> attribution bucket.
_STATE_BUCKETS = {
    "running": "compute",
    "ready": "queue",
    "transit": "migration",
    "new": "new",
    "done": "done",
}


def bucket_for_state(state_value: str, block_reason: str = "") -> str:
    """Map a :class:`~repro.sim.thread.ThreadState` value (e.g.
    ``"running"``) and the current block reason to a profile bucket."""
    if state_value == "blocked":
        return ("lock-wait" if block_reason in LOCK_WAIT_REASONS
                else "blocked")
    return _STATE_BUCKETS.get(state_value, "blocked")


@dataclass
class ThreadProfile:
    """Wall-time attribution for one thread."""

    name: str
    buckets: Dict[str, float] = field(default_factory=dict)
    migrations: int = 0

    @property
    def total_us(self) -> float:
        return sum(self.buckets.get(bucket, 0.0) for bucket in BUCKETS)

    def fraction(self, bucket: str) -> float:
        total = self.total_us
        return self.buckets.get(bucket, 0.0) / total if total else 0.0


def profile_result(result) -> List[ThreadProfile]:
    """Exact per-thread profiles from a finished
    :class:`~repro.sim.program.ProgramResult`."""
    kernel = result.cluster.kernel
    now_us = result.elapsed_us
    profiles = []
    for thread in kernel.threads:
        buckets = dict(thread.state_time_us)
        # Account the open interval of still-live threads.
        if thread.state.value not in ("done",) and \
                getattr(thread, "_state_since_us", None) is not None:
            bucket = bucket_for_state(thread.state.value,
                                      thread.block_reason)
            buckets[bucket] = buckets.get(bucket, 0.0) + max(
                0.0, now_us - thread._state_since_us)
        buckets.pop("new", None)
        buckets.pop("done", None)
        profiles.append(ThreadProfile(thread.name, buckets,
                                      thread.migrations))
    return profiles


def analyze_trace(events) -> List[ThreadProfile]:
    """Reconstruct per-thread profiles from a trace-event stream.

    Works on any iterable of objects with ``t_us``, ``kind``, ``thread``,
    ``detail`` and ``dur_us`` fields (e.g. a hand-built event list in a
    test, or events parsed back from a JSONL sink).
    """
    profiles: Dict[str, ThreadProfile] = {}
    out_at: Dict[str, float] = {}      # migrate-out times
    ready_at: Dict[str, float] = {}    # enqueue times
    block_at: Dict[str, object] = {}   # (time, reason)

    def prof(thread: str) -> ThreadProfile:
        if thread not in profiles:
            profiles[thread] = ThreadProfile(thread)
        return profiles[thread]

    def add(thread: str, bucket: str, us: float) -> None:
        if us < 0:
            return
        buckets = prof(thread).buckets
        buckets[bucket] = buckets.get(bucket, 0.0) + us

    for event in sorted(events, key=lambda e: e.t_us):
        thread, kind, t = event.thread, event.kind, event.t_us
        if not thread:
            continue
        if kind == "compute" and event.dur_us > 0:
            add(thread, "compute", event.dur_us)
        elif kind == "migrate-out":
            out_at[thread] = t
        elif kind == "migrate-in":
            if thread in out_at:
                add(thread, "migration", t - out_at.pop(thread))
                prof(thread).migrations += 1
        elif kind == "ready":
            if thread in block_at:
                t0, reason = block_at.pop(thread)
                add(thread,
                    bucket_for_state("blocked", reason), t - t0)
            ready_at[thread] = t
        elif kind == "run":
            if thread in ready_at:
                add(thread, "queue", t - ready_at.pop(thread))
        elif kind == "block":
            block_at[thread] = (t, event.detail)
    return list(profiles.values())


def critical_path(profiles: Iterable[ThreadProfile]
                  ) -> Optional[ThreadProfile]:
    """The thread whose accounted wall time is largest: the run cannot be
    shorter than this thread's timeline, so its bucket mix says what to
    optimize first."""
    profiles = list(profiles)
    if not profiles:
        return None
    return max(profiles, key=lambda p: p.total_us)


def render_profile(profiles: List[ThreadProfile],
                   elapsed_us: Optional[float] = None,
                   limit: int = 24,
                   title: Optional[str] = None) -> str:
    """A per-thread time-attribution report, busiest threads first."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = (f"{'thread':<14} {'total us':>12} "
              + " ".join(f"{bucket:>12}" for bucket in BUCKETS)
              + f" {'migr':>5}")
    lines.append(header)
    lines.append("-" * len(header))
    ordered = sorted(profiles, key=lambda p: -p.total_us)
    totals = {bucket: 0.0 for bucket in BUCKETS}
    for profile in ordered:
        for bucket in BUCKETS:
            totals[bucket] += profile.buckets.get(bucket, 0.0)
    for profile in ordered[:limit]:
        lines.append(
            f"{profile.name:<14} {profile.total_us:>12.1f} "
            + " ".join(f"{profile.buckets.get(bucket, 0.0):>12.1f}"
                       for bucket in BUCKETS)
            + f" {profile.migrations:>5}")
    if len(ordered) > limit:
        lines.append(f"... {len(ordered) - limit} more threads")
    lines.append(
        f"{'TOTAL':<14} {sum(totals.values()):>12.1f} "
        + " ".join(f"{totals[bucket]:>12.1f}" for bucket in BUCKETS)
        + f" {sum(p.migrations for p in ordered):>5}")
    critical = critical_path(ordered)
    if critical is not None and critical.total_us > 0:
        mix = ", ".join(
            f"{bucket} {100 * critical.fraction(bucket):.0f}%"
            for bucket in BUCKETS if critical.buckets.get(bucket, 0.0) > 0)
        lines.append(f"critical path: {critical.name} "
                     f"({critical.total_us:.1f} us: {mix})")
    if elapsed_us:
        lines.append(f"elapsed: {elapsed_us:.1f} us simulated")
    return "\n".join(lines)
