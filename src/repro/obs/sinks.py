"""Streaming trace sinks.

A :class:`repro.sim.trace.Tracer` forwards every event to a sink; the
sink decides what to keep.  Three disciplines:

* :class:`RingSink` — the default: a ``collections.deque(maxlen=...)``
  ring holding the newest N events with O(1) eviction and a ``dropped``
  count (the seed's list-based buffer paid O(n) per eviction via
  ``list.pop(0)``).
* :class:`JsonlSink` — streams every event to a JSON-lines file as it is
  emitted; memory use is O(1) regardless of run length, so arbitrarily
  long runs can be traced and post-processed offline.
* :class:`NullSink` — counts and discards; attach it to measure tracer
  overhead or to satisfy an API that demands a sink.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, List, Optional, Union


class TraceSink:
    """Interface: receives every emitted TraceEvent."""

    #: Events discarded (evicted or deliberately dropped).
    dropped: int = 0

    def append(self, event) -> None:
        raise NotImplementedError

    @property
    def events(self) -> List:
        """Retained events, oldest first (may be a strict suffix of what
        was emitted)."""
        return []

    def close(self) -> None:
        """Flush and release resources (no-op for in-memory sinks)."""


class RingSink(TraceSink):
    """Keep the newest ``maxlen`` events in a deque ring."""

    def __init__(self, maxlen: int = 100_000):
        if maxlen < 1:
            raise ValueError(f"ring needs maxlen >= 1, got {maxlen}")
        self.maxlen = maxlen
        self._ring = deque(maxlen=maxlen)
        self.dropped = 0

    def append(self, event) -> None:
        if len(self._ring) == self.maxlen:
            self.dropped += 1
        self._ring.append(event)

    @property
    def events(self) -> List:
        return list(self._ring)


class JsonlSink(TraceSink):
    """Stream events to ``path`` (or an open file object) as JSON lines.

    Each line is one event: ``{"t_us": ..., "kind": ..., "node": ...,
    "thread": ..., "vaddr": ..., "detail": ..., "dur_us": ...}``.
    Null-ish fields are omitted to keep lines short.
    """

    def __init__(self, path_or_file: Union[str, IO[str]]):
        if hasattr(path_or_file, "write"):
            self._file: IO[str] = path_or_file
            self._owns_file = False
        else:
            self._file = open(path_or_file, "w", encoding="utf-8")
            self._owns_file = True
        self.written = 0
        self.dropped = 0

    def append(self, event) -> None:
        record = {"t_us": event.t_us, "kind": event.kind,
                  "node": event.node}
        if event.thread:
            record["thread"] = event.thread
        if event.vaddr is not None:
            record["vaddr"] = event.vaddr
        if event.detail:
            record["detail"] = event.detail
        if event.dur_us:
            record["dur_us"] = event.dur_us
        self._file.write(json.dumps(record) + "\n")
        self.written += 1

    def close(self) -> None:
        self._file.flush()
        if self._owns_file:
            self._file.close()


class NullSink(TraceSink):
    """Count and discard everything."""

    def __init__(self) -> None:
        self.dropped = 0

    def append(self, event) -> None:
        self.dropped += 1
