"""Observability for simulated Amber runs.

Three layers, usable independently:

* **Metrics** (:mod:`repro.obs.metrics`) — counters, gauges, and
  log-scale latency histograms (p50/p90/p99/max) in a
  :class:`MetricsRegistry`.  Every :class:`~repro.sim.cluster.SimCluster`
  owns one; the kernel feeds it operation latencies (local/remote
  invocation, migration, move, replication, locate), forwarding-chain
  lengths, lock wait/hold times, and network queueing.
* **Tracing** (:mod:`repro.obs.sinks`, :mod:`repro.obs.perfetto`) —
  streaming trace sinks (in-memory ring, JSONL file, null) behind
  :class:`repro.sim.trace.Tracer`, plus an exporter to Chrome/Perfetto
  trace-event JSON: per-node tracks, per-thread slices, migration flow
  arrows.  ``python -m repro trace sor --fast --out trace.json``.
* **Profiling** (:mod:`repro.obs.profile`) — per-thread wall-time
  attribution into compute / migration / queue / lock-wait / blocked
  buckets, with a critical-path summary.
  ``python -m repro profile sor --fast``.

This package deliberately imports nothing from :mod:`repro.sim` so the
simulator can depend on it without cycles.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    merge_registries,
)
from repro.obs.perfetto import chrome_trace_events, export_chrome_trace
from repro.obs.profile import (
    BUCKETS,
    LOCK_WAIT_REASONS,
    ThreadProfile,
    analyze_trace,
    bucket_for_state,
    critical_path,
    profile_result,
    render_profile,
)
from repro.obs.sinks import JsonlSink, NullSink, RingSink, TraceSink

__all__ = [
    "BUCKETS",
    "Counter",
    "Gauge",
    "JsonlSink",
    "LOCK_WAIT_REASONS",
    "LatencyHistogram",
    "MetricsRegistry",
    "NullSink",
    "RingSink",
    "ThreadProfile",
    "TraceSink",
    "analyze_trace",
    "bucket_for_state",
    "chrome_trace_events",
    "critical_path",
    "export_chrome_trace",
    "merge_registries",
    "profile_result",
    "render_profile",
]
