"""Export simulation traces to Chrome/Perfetto trace-event JSON.

The output follows the Trace Event Format (the ``traceEvents`` JSON array
understood by ``chrome://tracing`` and https://ui.perfetto.dev): each
simulated **node becomes a process track** (pid) and each **thread a
thread track** (tid) within it, so a run opens as a per-node timeline.

Mapping from kernel events:

* ``compute`` events (which carry a duration) become complete slices
  (``ph: "X"``) on the thread's track — the colored bars of the timeline.
* ``migrate-out``/``migrate-in`` pairs become **flow arrows**
  (``ph: "s"``/``"f"``) so thread migrations draw as arcs between node
  tracks, plus instant markers at both ends.
* everything else (invocations, moves, replications, preemptions, blocks)
  becomes an instant event (``ph: "i"``) with its detail preserved in
  ``args``.

Timestamps are microseconds (the trace-event unit is also microseconds,
so simulated time maps 1:1); events are sorted before export so viewers
that require monotonic streams are happy even when duration events were
emitted at completion time.
"""

from __future__ import annotations

import json
from typing import Dict, IO, List, Optional, Union

#: Kinds rendered as instant markers on the thread (or node) track.
_INSTANT_KINDS = {
    "invoke-local", "invoke-remote", "move", "replicate", "preempt",
    "migrate-out", "migrate-in", "ready", "run", "block", "wake", "exit",
}

#: Kind -> trace-event category (drives viewer coloring/filtering).
_CATEGORIES = {
    "compute": "compute",
    "invoke-local": "invoke",
    "invoke-remote": "invoke",
    "migrate-out": "migration",
    "migrate-in": "migration",
    "move": "mobility",
    "replicate": "mobility",
    "preempt": "scheduling",
    "ready": "scheduling",
    "run": "scheduling",
    "block": "scheduling",
    "wake": "scheduling",
    "exit": "scheduling",
}


def chrome_trace_events(events, nodes: Optional[int] = None
                        ) -> List[Dict[str, object]]:
    """Convert an iterable of :class:`~repro.sim.trace.TraceEvent` (or any
    objects with the same fields) to a list of trace-event dicts."""
    events = sorted(events, key=lambda e: (e.t_us, e.kind))
    out: List[Dict[str, object]] = []
    tids: Dict[str, int] = {}
    seen_nodes = set(range(nodes)) if nodes else set()
    flow_id = 0
    pending_flows: Dict[str, int] = {}

    def tid_of(thread: str) -> int:
        # tid 0 is the node's kernel track (events with no thread name).
        if not thread:
            return 0
        if thread not in tids:
            tids[thread] = len(tids) + 1
        return tids[thread]

    for event in events:
        seen_nodes.add(event.node)
        tid = tid_of(event.thread)
        args: Dict[str, object] = {}
        if event.detail:
            args["detail"] = event.detail
        if event.vaddr is not None:
            args["vaddr"] = f"{event.vaddr:#x}"
        category = _CATEGORIES.get(event.kind, "kernel")
        if event.dur_us > 0:
            out.append({
                "name": event.kind, "cat": category, "ph": "X",
                "ts": round(event.t_us - event.dur_us, 3),
                "dur": round(event.dur_us, 3),
                "pid": event.node, "tid": tid, "args": args,
            })
            continue
        if event.kind == "migrate-out":
            flow_id += 1
            pending_flows[event.thread] = flow_id
            out.append({
                "name": "migration", "cat": "migration", "ph": "s",
                "id": flow_id, "ts": round(event.t_us, 3),
                "pid": event.node, "tid": tid, "args": args,
            })
        elif event.kind == "migrate-in" and event.thread in pending_flows:
            out.append({
                "name": "migration", "cat": "migration", "ph": "f",
                "bp": "e", "id": pending_flows.pop(event.thread),
                "ts": round(event.t_us, 3),
                "pid": event.node, "tid": tid, "args": args,
            })
        if event.kind in _INSTANT_KINDS or event.dur_us == 0:
            out.append({
                "name": event.kind, "cat": category, "ph": "i",
                "ts": round(event.t_us, 3), "s": "t",
                "pid": event.node, "tid": tid, "args": args,
            })

    # Metadata: name the process (node) and thread tracks.
    meta: List[Dict[str, object]] = []
    for node in sorted(seen_nodes):
        meta.append({"name": "process_name", "ph": "M", "pid": node,
                     "args": {"name": f"node {node}"}})
    for thread, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        for node in sorted(seen_nodes):
            meta.append({"name": "thread_name", "ph": "M", "pid": node,
                         "tid": tid, "args": {"name": thread}})
    for node in sorted(seen_nodes):
        meta.append({"name": "thread_name", "ph": "M", "pid": node,
                     "tid": 0, "args": {"name": "kernel"}})
    return meta + out


#: Process id of the self-profiler track — far above any node id, so
#: the host-time track sorts after the simulated-node tracks.
PROFILER_PID = 9999


def profiler_track_events(profiler) -> List[Dict[str, object]]:
    """Trace events for a hot-loop self-profiler track.

    ``profiler`` is a :class:`repro.perf.hotprof.HotLoopProfiler` whose
    cumulative snapshots become per-window complete slices: one thread
    track per phase, each window's slice duration being that phase's
    host time spent *within* the window.  An extra counter track plots
    events/sec per window.  The track's timebase is **host** time since
    attach (microseconds), not simulated time — it answers "where did
    the wall clock go", alongside the simulated timeline.
    """
    samples = getattr(profiler, "samples", None)
    if not samples:
        return []
    phases = list(samples[-1][2])
    out: List[Dict[str, object]] = [
        {"name": "process_name", "ph": "M", "pid": PROFILER_PID,
         "args": {"name": "self-profiler (host time)"}},
    ]
    for tid, phase in enumerate(phases, start=1):
        out.append({"name": "thread_name", "ph": "M",
                    "pid": PROFILER_PID, "tid": tid,
                    "args": {"name": phase}})
    prev_us, prev_events = 0.0, 0
    prev_phases: Dict[str, float] = {phase: 0.0 for phase in phases}
    for rel_us, events, cum in samples:
        window_us = rel_us - prev_us
        if window_us <= 0:
            continue
        for tid, phase in enumerate(phases, start=1):
            spent_us = (cum.get(phase, 0.0)
                        - prev_phases.get(phase, 0.0)) * 1e6
            if spent_us <= 0:
                continue
            out.append({
                "name": phase, "cat": "hotloop", "ph": "X",
                "ts": round(prev_us, 3),
                "dur": round(min(spent_us, window_us), 3),
                "pid": PROFILER_PID, "tid": tid,
                "args": {"cumulative_ms": round(
                    cum.get(phase, 0.0) * 1e3, 3)},
            })
        rate = (events - prev_events) / (window_us / 1e6)
        out.append({
            "name": "events/sec", "ph": "C", "pid": PROFILER_PID,
            "ts": round(rel_us, 3), "args": {"rate": round(rate, 1)},
        })
        prev_us, prev_events, prev_phases = rel_us, events, cum
    return out


def export_chrome_trace(events, path_or_file: Union[str, IO[str]],
                        nodes: Optional[int] = None,
                        extra: Optional[List[Dict[str, object]]] = None
                        ) -> int:
    """Write a Chrome trace-event JSON file; returns the event count.

    ``extra`` appends pre-built trace events (e.g. a
    :func:`profiler_track_events` track) after the simulated tracks.
    The file loads directly in https://ui.perfetto.dev or
    ``chrome://tracing``.
    """
    trace = {
        "traceEvents": (chrome_trace_events(events, nodes=nodes)
                        + list(extra or [])),
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.sim (Amber reproduction)"},
    }
    if hasattr(path_or_file, "write"):
        json.dump(trace, path_or_file)
    else:
        with open(path_or_file, "w", encoding="utf-8") as file:
            json.dump(trace, file)
    return len(trace["traceEvents"])
