"""Figure 2: measured speedup of the Amber Red/Black SOR program.

Reruns the paper's experiment: the 122x842 grid, partitioned into eight
section objects (six for the three- and six-node runs), across the
configurations 1Nx1P ... 8Nx4P, plus the no-overlap variant of 8Nx4P that
demonstrates the value of overlapping communication with computation.

Run: ``python -m repro.bench.figure2`` (add ``--fast`` for fewer
iterations).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import List, Optional

from repro.apps.sor import SorProblem, run_amber_sor
from repro.bench.paper_data import PAPER_FIGURE2_SPEEDUPS
from repro.bench.reporting import collect_metrics, render_table
from repro.core.costs import CostModel

#: The configurations plotted in Figure 2, as (nodes, cpus_per_node).
FIGURE2_CONFIGS = [
    (1, 1), (1, 2), (1, 4),
    (2, 2), (4, 1),
    (2, 4), (4, 2),
    (3, 4), (4, 4), (6, 4), (8, 4),
]

#: Iteration count for the measured runs.  Speedup is iteration-dominated
#: and stable beyond a few dozen sweeps (startup costs amortize away).
DEFAULT_ITERATIONS = 30


@dataclass
class Figure2Row:
    label: str
    nodes: int
    cpus_per_node: int
    total_cpus: int
    sections: int
    overlap: bool
    speedup: float
    paper_speedup: Optional[float]

    @property
    def efficiency(self) -> float:
        return self.speedup / self.total_cpus


def run_figure2(iterations: int = DEFAULT_ITERATIONS,
                costs: Optional[CostModel] = None,
                metrics_out: Optional[dict] = None) -> List[Figure2Row]:
    problem = SorProblem(iterations=iterations)
    rows: List[Figure2Row] = []
    registries = []
    for nodes, cpus in FIGURE2_CONFIGS:
        result = run_amber_sor(problem, nodes=nodes, cpus_per_node=cpus,
                               costs=costs)
        registries.append(result.cluster.metrics)
        rows.append(Figure2Row(
            label=result.label, nodes=nodes, cpus_per_node=cpus,
            total_cpus=nodes * cpus, sections=result.sections,
            overlap=True, speedup=result.speedup,
            paper_speedup=PAPER_FIGURE2_SPEEDUPS.get(result.label)))
    no_overlap = run_amber_sor(problem, nodes=8, cpus_per_node=4,
                               overlap=False, costs=costs)
    registries.append(no_overlap.cluster.metrics)
    collect_metrics(metrics_out, "figure2", *registries)
    rows.append(Figure2Row(
        label="8Nx4P (no overlap)", nodes=8, cpus_per_node=4,
        total_cpus=32, sections=no_overlap.sections, overlap=False,
        speedup=no_overlap.speedup,
        paper_speedup=PAPER_FIGURE2_SPEEDUPS.get("8Nx4P (no overlap)")))
    return rows


def main(iterations: int = DEFAULT_ITERATIONS,
         metrics_out: Optional[dict] = None) -> str:
    rows = run_figure2(iterations, metrics_out=metrics_out)
    return render_table(
        ["Config", "CPUs", "Sections", "Speedup", "Paper", "Efficiency"],
        [(r.label, r.total_cpus, r.sections, r.speedup,
          r.paper_speedup if r.paper_speedup is not None else "-",
          r.efficiency)
         for r in rows],
        title=("Figure 2: Measured speedup, Amber Red/Black SOR "
               "(122x842 grid)"),
    )


if __name__ == "__main__":
    fast = "--fast" in sys.argv
    print(main(iterations=8 if fast else DEFAULT_ITERATIONS))
