"""Table 1: latency of Amber operations (paper section 5).

Runs the five microbenchmarks on a simulated 2-node cluster of 4-CPU
machines under the paper's stated conditions — light load, objects and
threads fit in one network packet, destination known via a one-hop
forwarding chain — and compares against the published numbers.

Run: ``python -m repro.bench.table1``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bench.paper_data import PAPER_TABLE1_MS
from repro.bench.reporting import collect_metrics, render_table
from repro.core.costs import CostModel
from repro.sim.cluster import ClusterConfig
from repro.sim.objects import SimObject
from repro.sim.program import AmberProgram
from repro.sim.syscalls import Invoke, Join, MoveTo, New, NewThread, Start

#: Table 1 benchmark object: fits in one network packet.
PACKET_BYTES = 1000


class _BenchTarget(SimObject):
    def noop(self, ctx):
        """Empty generator operation: pure invocation cost."""
        if False:
            yield None

    def body(self, ctx):
        if False:
            yield None


@dataclass
class Table1Row:
    operation: str
    measured_ms: float
    paper_ms: float

    @property
    def ratio(self) -> float:
        return self.measured_ms / self.paper_ms if self.paper_ms else 0.0


def _microbench(ctx):
    """The five measurements, mirroring the paper's benchmark conditions."""
    out = {}

    t0 = ctx.now_us
    target = yield New(_BenchTarget, size_bytes=PACKET_BYTES)
    out["object create"] = ctx.now_us - t0

    t0 = ctx.now_us
    yield Invoke(target, "noop")
    out["local invoke/return"] = ctx.now_us - t0

    # Move the object away: the local descriptor now holds a one-hop
    # forwarding address, exactly the stated benchmark condition.
    yield MoveTo(target, 1)
    t0 = ctx.now_us
    yield Invoke(target, "noop")
    out["remote invoke/return"] = ctx.now_us - t0

    mover = yield New(_BenchTarget, size_bytes=PACKET_BYTES)
    t0 = ctx.now_us
    yield MoveTo(mover, 1)
    out["object move"] = ctx.now_us - t0

    local = yield New(_BenchTarget, size_bytes=PACKET_BYTES)
    thread = yield NewThread(local, "body")
    t0 = ctx.now_us
    yield Start(thread)
    yield Join(thread)
    out["thread start/join"] = ctx.now_us - t0
    return out


def run_table1(costs: Optional[CostModel] = None,
               metrics_out: Optional[dict] = None) -> List[Table1Row]:
    config = ClusterConfig(nodes=2, cpus_per_node=4)
    result = AmberProgram(config, costs or CostModel.firefly()).run(
        _microbench)
    measured: Dict[str, float] = result.value
    collect_metrics(metrics_out, "table1", result.metrics)
    return [Table1Row(name, measured[name] / 1000.0, PAPER_TABLE1_MS[name])
            for name in PAPER_TABLE1_MS]


def main(metrics_out: Optional[dict] = None) -> str:
    rows = run_table1(metrics_out=metrics_out)
    table = render_table(
        ["Operation", "Measured (ms)", "Paper (ms)", "Measured/Paper"],
        [(r.operation, r.measured_ms, r.paper_ms, r.ratio) for r in rows],
        title="Table 1: Latency of Amber Operations",
    )
    return table


if __name__ == "__main__":
    print(main())
