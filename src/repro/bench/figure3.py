"""Figure 3: effect of varying the SOR problem size (4Nx4P).

Sweeps the grid size from ~11k to ~411k points on the fixed 4Nx4P
configuration.  The paper's claim: "for sufficiently small grids
[communication] will dominate computation and limit speedup.  For
sufficiently large grids computation will dominate and speedup will be
good" — the curve rises steeply and flattens toward the 16-CPU ideal.
The 122x842 grid of Figure 2 is marked "X".

Run: ``python -m repro.bench.figure3``
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.apps.sor import SorProblem, run_amber_sor
from repro.bench.reporting import collect_metrics, render_series
from repro.core.costs import CostModel

#: Grid sizes swept (rows, cols), scaled around the paper's 122x842.
FIGURE3_GRIDS: List[Tuple[int, int]] = [
    (40, 280),
    (61, 421),
    (80, 560),
    (122, 842),     # the "X" point of Figure 3
    (172, 1192),
    (244, 1684),
]

PAPER_GRID = (122, 842)
DEFAULT_ITERATIONS = 20
NODES = 4
CPUS_PER_NODE = 4


@dataclass
class Figure3Point:
    rows: int
    cols: int
    points: int
    speedup: float
    is_paper_grid: bool


def run_figure3(iterations: int = DEFAULT_ITERATIONS,
                costs: Optional[CostModel] = None,
                grids: Optional[List[Tuple[int, int]]] = None,
                metrics_out: Optional[dict] = None
                ) -> List[Figure3Point]:
    out: List[Figure3Point] = []
    registries = []
    for rows, cols in grids or FIGURE3_GRIDS:
        problem = SorProblem(rows=rows, cols=cols, iterations=iterations)
        result = run_amber_sor(problem, nodes=NODES,
                               cpus_per_node=CPUS_PER_NODE, costs=costs)
        registries.append(result.cluster.metrics)
        out.append(Figure3Point(rows, cols, problem.points, result.speedup,
                                (rows, cols) == PAPER_GRID))
    collect_metrics(metrics_out, "figure3", *registries)
    return out


def main(iterations: int = DEFAULT_ITERATIONS,
         metrics_out: Optional[dict] = None) -> str:
    points = run_figure3(iterations, metrics_out=metrics_out)
    series = [(f"{p.points:,}{' (X)' if p.is_paper_grid else ''}", p.speedup)
              for p in points]
    return render_series(
        series, x_label="grid points", y_label="speedup",
        title=(f"Figure 3: SOR speedup vs problem size "
               f"({NODES}Nx{CPUS_PER_NODE}P, ideal = "
               f"{NODES * CPUS_PER_NODE})"))


if __name__ == "__main__":
    fast = "--fast" in sys.argv
    print(main(iterations=6 if fast else DEFAULT_ITERATIONS))
