"""Plain-text rendering of benchmark results (tables and series),
plus helpers for exporting metrics registries alongside the tables."""

from __future__ import annotations

import json
from typing import Iterable, List, Optional, Sequence

from repro.obs.metrics import merge_registries


def render_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table."""
    body = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(cell.ljust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(points: Sequence[tuple], x_label: str, y_label: str,
                  title: Optional[str] = None, width: int = 48) -> str:
    """Render an (x, y) series as a labeled horizontal bar chart — the
    closest plain text gets to regenerating a figure."""
    ys = [y for _, y in points]
    top = max(ys) if ys else 1.0
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{x_label:>14} | {y_label}")
    for x, y in points:
        bar = "#" * max(1, round(width * y / top)) if top > 0 else ""
        lines.append(f"{_fmt(x):>14} | {bar} {_fmt(y)}")
    return "\n".join(lines)


def collect_metrics(metrics_out: Optional[dict], key: str,
                    *registries) -> None:
    """Merge ``registries`` into ``metrics_out[key]`` as a JSON-ready
    summary.  No-op when ``metrics_out`` is None (the artifact was run
    without ``--metrics-json``)."""
    if metrics_out is None:
        return
    merged = merge_registries(r for r in registries if r is not None)
    metrics_out[key] = merged.as_dict()


def write_metrics_json(path: str, metrics: dict) -> None:
    """Write collected per-artifact metrics summaries to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(metrics, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)
