"""Benchmark harness: one driver per table, figure, and ablation.

Each driver module regenerates one artifact of the paper's evaluation and
is runnable standalone::

    python -m repro.bench.table1      # Table 1: primitive latencies
    python -m repro.bench.figure1     # Figure 1: SOR program structure
    python -m repro.bench.figure2     # Figure 2: SOR speedup by config
    python -m repro.bench.figure3     # Figure 3: speedup vs problem size
    python -m repro.bench.ablations   # Section 4 claims (Amber vs Ivy...)

The pytest-benchmark entries in ``benchmarks/`` call the same drivers and
assert the *shape* of each result against the paper (who wins, by what
rough factor, where crossovers fall); absolute 1989 latencies are matched
by cost-model calibration, not by accident.
"""

from repro.bench.paper_data import PAPER_FIGURE2_SPEEDUPS, PAPER_TABLE1_MS

__all__ = ["PAPER_FIGURE2_SPEEDUPS", "PAPER_TABLE1_MS"]
