"""Figure 1: structure of the Amber Red/Black SOR implementation.

Figure 1 is a structure diagram, not a data plot: three grid sections,
each with computation threads, edge threads toward its neighbors, and a
convergence thread talking to a single master.  This driver runs the real
program on three sections (as drawn) and reports the topology it actually
instantiated — section objects and their nodes, and the threads the run
created, recovered from the simulated kernel.

Run: ``python -m repro.bench.figure1``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.sor import SorProblem, run_amber_sor
from repro.apps.sor.amber_sor import SorMaster, SorSection
from repro.bench.reporting import collect_metrics


@dataclass
class SectionStructure:
    index: int
    node: int
    workers: int
    edge_threads: int
    convergers: int


@dataclass
class SorStructure:
    master_node: int
    sections: List[SectionStructure]
    total_threads: int

    def describe(self) -> str:
        lines = ["Figure 1: structure of the Amber Red/Black SOR "
                 "implementation", ""]
        lines.append(f"  master object @ node {self.master_node}")
        for section in self.sections:
            lines.append(
                f"  section {section.index} @ node {section.node}: "
                f"{section.workers} computation thread(s), "
                f"{section.edge_threads} edge thread(s), "
                f"{section.convergers} convergence thread(s)")
        lines.append("")
        lines.append(f"  total application threads: {self.total_threads} "
                     f"(+ one coordinator per section, + main)")
        return "\n".join(lines)


def run_figure1(sections: int = 3, nodes: int = 3,
                metrics_out: Optional[dict] = None) -> SorStructure:
    """Run a three-section SOR (as drawn in Figure 1) and recover the
    instantiated topology from the simulated kernel."""
    problem = SorProblem(rows=12, cols=36, iterations=2)
    result = run_amber_sor(problem, nodes=nodes, cpus_per_node=2,
                           sections=sections)
    cluster = result.cluster
    collect_metrics(metrics_out, "figure1", cluster.metrics)

    section_objs = sorted(
        (obj for obj in cluster.objects.values()
         if isinstance(obj, SorSection)),
        key=lambda section: section.index)
    masters = [obj for obj in cluster.objects.values()
               if isinstance(obj, SorMaster)]

    # Thread names encode their role: w<sec>.<i>, e<sec>.L/R, c<sec>.
    counts: Dict[int, Dict[str, int]] = {
        section.index: {"w": 0, "e": 0, "c": 0}
        for section in section_objs}
    app_threads = 0
    for thread in cluster.kernel.threads:
        name = thread.name
        if name and name[0] in "wec" and name[1:2].isdigit():
            index = int(name[1:].split(".")[0])
            counts[index][name[0]] += 1
            app_threads += 1

    structures = [
        SectionStructure(
            index=section.index,
            node=section.home_node,
            workers=counts[section.index]["w"],
            edge_threads=counts[section.index]["e"],
            convergers=counts[section.index]["c"],
        )
        for section in section_objs
    ]
    return SorStructure(master_node=masters[0].home_node,
                        sections=structures, total_threads=app_threads)


def main(metrics_out: Optional[dict] = None) -> str:
    return run_figure1(metrics_out=metrics_out).describe()


if __name__ == "__main__":
    print(main())
