"""Ablations: the design claims of sections 2.3, 3.3, 3.5 and 4, measured.

The paper argues these qualitatively; each function here turns one claim
into a measurement on the simulated cluster (same cost model and network
for both systems, so comparisons are apples to apples):

* A1 ``amber_vs_ivy_sor``   — function shipping vs data shipping on SOR
* A2 ``lock_thrash``        — shared lock: Amber object vs DSM TAS page
                              vs DSM RPC-lock escape hatch (section 4.1)
* A3 ``false_sharing``      — unrelated objects sharing a page (4.2)
* A4 ``move_cost_vs_cpus``  — preempt-all makes moves dearer per CPU (3.5)
* A5 ``forwarding_chase``   — chain chase once, then cached (3.3)
* A6 ``immutable_replication`` — read-only replication kills repeat
                              communication (2.3)

Run: ``python -m repro.bench.ablations``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.apps.sor import SorProblem, run_amber_sor
from repro.apps.sor.ivy_sor import run_ivy_sor
from repro.bench.reporting import collect_metrics, render_table
from repro.dsm.machine import IvyCluster
from repro.dsm.ops import (
    Compute as IvyCompute,
    Load,
    RpcLockAcquire,
    RpcLockRelease,
    Store,
    TestAndSet,
)
from repro.sim.cluster import ClusterConfig
from repro.sim.objects import SimObject
from repro.sim.program import AmberProgram
from repro.sim.sync import Lock
from repro.sim.syscalls import (
    Compute,
    Fork,
    GetStats,
    Invoke,
    Join,
    MoveTo,
    New,
    SetImmutable,
)

# ---------------------------------------------------------------------------
# A1: Amber vs Ivy on SOR
# ---------------------------------------------------------------------------


@dataclass
class SorComparisonRow:
    label: str
    amber_speedup: float
    ivy_speedup: float
    ivy_faults: int
    ivy_page_transfers: int
    amber_messages: int
    ivy_messages: int


def amber_vs_ivy_sor(iterations: int = 10,
                     configs=((1, 4), (2, 4), (4, 4), (8, 4)),
                     metrics_out: Optional[dict] = None,
                     ) -> List[SorComparisonRow]:
    problem = SorProblem(iterations=iterations)
    rows = []
    registries = []
    for nodes, cpus in configs:
        amber = run_amber_sor(problem, nodes=nodes, cpus_per_node=cpus)
        ivy = run_ivy_sor(problem, nodes=nodes, cpus_per_node=cpus)
        registries.append(amber.cluster.metrics)
        rows.append(SorComparisonRow(
            label=f"{nodes}Nx{cpus}P",
            amber_speedup=amber.speedup,
            ivy_speedup=ivy.speedup,
            ivy_faults=ivy.stats.total_faults,
            ivy_page_transfers=ivy.stats.page_transfers,
            amber_messages=amber.cluster.network.stats.messages,
            ivy_messages=ivy.network_messages,
        ))
    collect_metrics(metrics_out, "ablations/A1-amber", *registries)
    return rows


# ---------------------------------------------------------------------------
# A2: lock thrashing (section 4.1)
# ---------------------------------------------------------------------------


@dataclass
class LockThrashRow:
    system: str
    elapsed_us: float
    us_per_critical_section: float
    network_messages: int
    network_bytes: int
    #: Total CPU consumed across the cluster (spinning shows up here).
    cpu_busy_us: float
    hottest_page_transfers: int


class _SharedCounter(SimObject):
    def __init__(self, lock):
        self.lock = lock
        self.value = 0

    def bump(self, ctx, rounds, work_us):
        for _ in range(rounds):
            yield Invoke(self.lock, "acquire")
            yield Compute(work_us)
            self.value += 1
            yield Invoke(self.lock, "release")


def _amber_lock_workload(nodes: int, rounds: int, work_us: float
                         ) -> LockThrashRow:
    def main(ctx):
        lock = yield New(Lock)
        counters = []
        for node in range(nodes):
            counter = yield New(_SharedCounter, lock, on_node=node)
            counters.append(counter)
        workers = []
        for counter in counters:
            workers.append((yield Fork(counter, "bump", rounds, work_us)))
        for worker in workers:
            yield Join(worker)
        return sum(counter.value for counter in counters)

    program = AmberProgram(ClusterConfig(nodes=nodes, cpus_per_node=2))
    result = program.run(main)
    total = nodes * rounds
    return LockThrashRow(
        system="Amber lock object",
        elapsed_us=result.elapsed_us,
        us_per_critical_section=result.elapsed_us / total,
        network_messages=result.cluster.network.stats.messages,
        network_bytes=result.cluster.network.stats.bytes,
        cpu_busy_us=result.stats.total_cpu_busy_us,
        hottest_page_transfers=0,
    )


LOCK_ADDR = 0
DATA_ADDR = 64          # same page as the lock, like a naive port
SPIN_BACKOFF_US = 100.0


def _ivy_tas_process(cluster: IvyCluster, rounds: int, work_us: float):
    for _ in range(rounds):
        while True:
            held = yield TestAndSet(LOCK_ADDR)
            if not held:
                break
            yield IvyCompute(SPIN_BACKOFF_US)
        value = yield Load(DATA_ADDR)
        yield IvyCompute(work_us)
        yield Store(DATA_ADDR, (value or 0) + 1)
        yield Store(LOCK_ADDR, False)


def _ivy_rpc_process(cluster: IvyCluster, rounds: int, work_us: float):
    for _ in range(rounds):
        yield RpcLockAcquire(0)
        value = yield Load(DATA_ADDR)
        yield IvyCompute(work_us)
        yield Store(DATA_ADDR, (value or 0) + 1)
        yield RpcLockRelease(0)


def _ivy_lock_workload(nodes: int, rounds: int, work_us: float,
                       rpc: bool) -> LockThrashRow:
    cluster = IvyCluster(nodes, cpus_per_node=2)
    fn = _ivy_rpc_process if rpc else _ivy_tas_process
    for node in range(nodes):
        cluster.spawn(node, fn, rounds, work_us, name=f"locker{node}")
    cluster.run()
    total = nodes * rounds
    _, hottest = cluster.stats.hottest_page()
    return LockThrashRow(
        system=("DSM lock via RPC (recent Ivy)" if rpc
                else "DSM test-and-set page"),
        elapsed_us=cluster.elapsed_us,
        us_per_critical_section=cluster.elapsed_us / total,
        network_messages=cluster.network.stats.messages,
        network_bytes=cluster.network.stats.bytes,
        cpu_busy_us=sum(node.cpu_busy_us for node in cluster.nodes),
        hottest_page_transfers=hottest,
    )


def lock_thrash(nodes: int = 4, rounds: int = 25,
                work_us: float = 500.0) -> List[LockThrashRow]:
    return [
        _amber_lock_workload(nodes, rounds, work_us),
        _ivy_lock_workload(nodes, rounds, work_us, rpc=True),
        _ivy_lock_workload(nodes, rounds, work_us, rpc=False),
    ]


# ---------------------------------------------------------------------------
# A3: false sharing (section 4.2)
# ---------------------------------------------------------------------------


@dataclass
class FalseSharingRow:
    layout: str
    network_messages: int
    page_transfers: int
    messages_per_update: float


class _PrivateCounter(SimObject):
    def __init__(self):
        self.value = 0

    def bump(self, ctx, rounds):
        for _ in range(rounds):
            yield Compute(UPDATE_GAP_US)
            self.value += 1
        return self.value


#: Gap between a node's successive counter updates: long enough that the
#: nodes' update streams interleave in time (sustained sharing) instead of
#: one node finishing before the next starts.
UPDATE_GAP_US = 2_000.0


def _ivy_counter_process(cluster: IvyCluster, addr: int, rounds: int):
    for _ in range(rounds):
        value = yield Load(addr)
        yield IvyCompute(UPDATE_GAP_US)
        yield Store(addr, (value or 0) + 1)


def false_sharing(nodes: int = 4, rounds: int = 50) -> List[FalseSharingRow]:
    """Each node updates only its own counter.  Packed on one DSM page the
    counters ping-pong; page-aligned they are quiet after first touch;
    Amber objects never talk at all."""
    total_updates = nodes * rounds
    rows = []

    # DSM, counters packed into one page (8 bytes apart).
    packed = IvyCluster(nodes, cpus_per_node=2)
    for node in range(nodes):
        packed.spawn(node, _ivy_counter_process, node * 8, rounds,
                     name=f"packed{node}")
    packed.run()
    rows.append(FalseSharingRow(
        "DSM: counters packed in one page",
        packed.network.stats.messages,
        packed.stats.page_transfers,
        packed.network.stats.messages / total_updates))

    # DSM, counters on separate pages.
    aligned = IvyCluster(nodes, cpus_per_node=2)
    page = aligned.costs.page_bytes
    for node in range(nodes):
        aligned.spawn(node, _ivy_counter_process, node * page, rounds,
                      name=f"aligned{node}")
    aligned.run()
    rows.append(FalseSharingRow(
        "DSM: counters page-aligned",
        aligned.network.stats.messages,
        aligned.stats.page_transfers,
        aligned.network.stats.messages / total_updates))

    # Amber: one counter object per node, bumped by a local thread.
    def main(ctx):
        counters = []
        for node in range(nodes):
            counters.append((yield New(_PrivateCounter, on_node=node)))
        workers = []
        for counter in counters:
            workers.append((yield Fork(counter, "bump", rounds)))
        for worker in workers:
            yield Join(worker)

    program = AmberProgram(ClusterConfig(nodes=nodes, cpus_per_node=2))
    result = program.run(main)
    startup_messages = result.cluster.network.stats.messages
    rows.append(FalseSharingRow(
        "Amber: one object per node",
        startup_messages,
        0,
        startup_messages / total_updates))
    return rows


# ---------------------------------------------------------------------------
# A4: move cost vs CPUs per node (section 3.5)
# ---------------------------------------------------------------------------


@dataclass
class MoveCostRow:
    cpus_per_node: int
    move_us: float


def move_cost_vs_cpus(cpu_counts=(1, 2, 4, 8, 16)) -> List[MoveCostRow]:
    rows = []
    for cpus in cpu_counts:
        def bench(ctx):
            obj = yield New(_PrivateCounter, size_bytes=1000)
            t0 = ctx.now_us
            yield MoveTo(obj, 1)
            return ctx.now_us - t0

        program = AmberProgram(ClusterConfig(nodes=2, cpus_per_node=cpus))
        rows.append(MoveCostRow(cpus, program.run(bench).value))
    return rows


# ---------------------------------------------------------------------------
# A5: forwarding chains (section 3.3)
# ---------------------------------------------------------------------------


@dataclass
class ForwardingRow:
    chain_hops: int
    first_invoke_us: float
    second_invoke_us: float


class _Hopper(SimObject):
    """Moves itself along a chain of nodes; only the nodes it visits learn
    anything, so the origin's descriptor goes stale by one hop per move."""

    SIZE_BYTES = 256

    def hop_chain(self, ctx, k):
        for step in range(1, k + 1):
            yield MoveTo(self, step)
        return ctx.node

    def poke(self, ctx):
        yield Compute(1.0)
        return ctx.node


def forwarding_chase(max_hops: int = 6) -> List[ForwardingRow]:
    """An object walks 0 -> 1 -> ... -> k under its own power (a thread
    bound to it drives the moves), so node 0 only ever saw the first hop.
    Main's first invocation chases the whole forwarding chain; the second
    goes direct thanks to path caching."""
    rows = []
    for hops in range(1, max_hops + 1):
        def bench(ctx, k=hops):
            obj = yield New(_Hopper)
            walker = yield Fork(obj, "hop_chain", k)
            yield Join(walker)
            t0 = ctx.now_us
            yield Invoke(obj, "poke")
            first = ctx.now_us - t0
            t0 = ctx.now_us
            yield Invoke(obj, "poke")
            second = ctx.now_us - t0
            return first, second

        program = AmberProgram(ClusterConfig(nodes=max_hops + 1,
                                             cpus_per_node=2))
        first, second = program.run(bench).value
        rows.append(ForwardingRow(hops, first, second))
    return rows


# ---------------------------------------------------------------------------
# A6: immutable replication (section 2.3)
# ---------------------------------------------------------------------------


@dataclass
class ImmutableRow:
    mode: str
    elapsed_us: float
    network_messages: int
    thread_migrations: int


class _Table(SimObject):
    """A lookup table read many times by remote nodes."""

    SIZE_BYTES = 4096

    def __init__(self):
        self.entries = {i: i * i for i in range(64)}

    def lookup(self, ctx, key):
        yield Compute(2.0)
        return self.entries[key % 64]


class _TableReader(SimObject):
    def read_many(self, ctx, table, times):
        total = 0
        for i in range(times):
            total += yield Invoke(table, "lookup", i)
        return total


def immutable_replication(reads: int = 40) -> List[ImmutableRow]:
    def run_mode(immutable: bool) -> ImmutableRow:
        def main(ctx):
            table = yield New(_Table)
            if immutable:
                yield SetImmutable(table)
            reader = yield New(_TableReader, on_node=1)
            t0 = ctx.now_us
            result = yield Invoke(reader, "read_many", table, reads)
            elapsed = ctx.now_us - t0
            stats = yield GetStats()
            return elapsed, stats.thread_migrations

        program = AmberProgram(ClusterConfig(nodes=2, cpus_per_node=2))
        result = program.run(main)
        elapsed, migrations = result.value
        return ImmutableRow(
            mode="immutable (replicated)" if immutable else "mutable",
            elapsed_us=elapsed,
            network_messages=result.cluster.network.stats.messages,
            thread_migrations=migrations,
        )

    return [run_mode(False), run_mode(True)]


# ---------------------------------------------------------------------------


def main(metrics_out: Optional[dict] = None) -> str:
    sections = []
    sections.append(render_table(
        ["Config", "Amber speedup", "Ivy speedup", "Ivy faults",
         "Ivy transfers", "Amber msgs", "Ivy msgs"],
        [(r.label, r.amber_speedup, r.ivy_speedup, r.ivy_faults,
          r.ivy_page_transfers, r.amber_messages, r.ivy_messages)
         for r in amber_vs_ivy_sor(metrics_out=metrics_out)],
        title="A1: Function shipping (Amber) vs data shipping (Ivy), "
              "Red/Black SOR"))
    sections.append(render_table(
        ["System", "us/crit.sec", "Messages", "KB on wire",
         "CPU busy (ms)", "Hottest page transfers"],
        [(r.system, r.us_per_critical_section, r.network_messages,
          r.network_bytes / 1024, r.cpu_busy_us / 1000,
          r.hottest_page_transfers)
         for r in lock_thrash()],
        title="A2: Shared lock, 4 nodes (section 4.1)"))
    sections.append(render_table(
        ["Layout", "Messages", "Page transfers", "Msgs/update"],
        [(r.layout, r.network_messages, r.page_transfers,
          r.messages_per_update)
         for r in false_sharing()],
        title="A3: False sharing, per-node private counters (section 4.2)"))
    sections.append(render_table(
        ["CPUs/node", "Move latency (us)"],
        [(r.cpus_per_node, r.move_us) for r in move_cost_vs_cpus()],
        title="A4: Object move cost vs CPUs per node (section 3.5)"))
    sections.append(render_table(
        ["Chain hops", "1st invoke (us)", "2nd invoke (us)"],
        [(r.chain_hops, r.first_invoke_us, r.second_invoke_us)
         for r in forwarding_chase()],
        title="A5: Forwarding-chain chase and path caching (section 3.3)"))
    sections.append(render_table(
        ["Mode", "Elapsed (us)", "Messages", "Thread migrations"],
        [(r.mode, r.elapsed_us, r.network_messages, r.thread_migrations)
         for r in immutable_replication()],
        title="A6: Remote reads of a shared table (section 2.3)"))
    return "\n\n".join(sections)


if __name__ == "__main__":
    print(main())
