"""The numbers the paper reports, as data.

Table 1 is printed verbatim in the paper.  Figures 2 and 3 are plots; the
text states the headline values ("a speedup of 25 for the 8Nx4P case",
"nearly identical speedups ... (1Nx4P, 2Nx2P, 4Nx1P)"), and the remaining
entries here are read off the published figure — treat them as approximate
(tagged with the tolerance used by the shape checks).
"""

from __future__ import annotations

#: Table 1: Latency of Amber Operations (milliseconds).
PAPER_TABLE1_MS = {
    "object create": 0.18,
    "local invoke/return": 0.012,
    "remote invoke/return": 8.32,
    "object move": 12.43,
    "thread start/join": 1.33,
}

#: Figure 2: measured speedup by configuration (label -> speedup).
#: "25" for 8Nx4P is stated in the text; others are figure read-offs.
PAPER_FIGURE2_SPEEDUPS = {
    "1Nx1P": 1.0,
    "1Nx2P": 2.0,
    "1Nx4P": 3.9,
    "2Nx2P": 3.9,
    "4Nx1P": 3.9,
    "2Nx4P": 7.6,
    "4Nx2P": 7.6,
    "3Nx4P": 11.0,
    "4Nx4P": 14.5,
    "6Nx4P": 20.0,
    "8Nx4P": 25.0,
    "8Nx4P (no overlap)": 21.0,
}

#: Relative tolerance for comparing our speedups against figure read-offs.
FIGURE2_SHAPE_RTOL = 0.25

#: Figure 3: speedup vs problem size at 4Nx4P.  The "X" point is the
#: 122x842 grid of Figure 2; the curve "rises steeply then flattens".
PAPER_FIGURE3_POINTS = {
    11_200: 8.0,
    25_681: 11.0,
    44_800: 12.5,
    102_724: 14.5,    # the "X" grid
    205_024: 15.0,
    410_896: 15.5,
}

#: The paper's qualitative claims checked by the shape tests.
CLAIMS = [
    "speedup ~25 at 8Nx4P with overlapped communication",
    "overlap beats no-overlap at 8Nx4P",
    "all 4-CPU configurations achieve nearly identical speedup",
    "both 8-CPU configurations achieve similar speedup",
    "speedup at fixed machine rises with problem size and flattens",
    "remote invocations are 3-4 orders of magnitude dearer than local",
]
