"""The global virtual address space (paper section 3.1).

Amber arranges the virtual address space of every participating task
identically, so that any address has the same meaning on every node.  Dynamic
objects are allocated from per-node *regions* of a shared address space: each
node receives a private region at startup and requests further regions from a
central *address-space server* as it exhausts its pool.  Because region
ownership is known everywhere, any node can derive an object's *home node*
from its virtual address alone (section 3.3) — this is what makes the
uninitialized-descriptor trick work.

Two rules from the paper are enforced here:

* regions are handed out whole (1 MiB by default) and never overlap;
* heap blocks are **never divided once they have been returned to the free
  pool** (section 3.2) — a freed block may only be reused at its original
  size, so a stale reference into a reused block still lands on a descriptor
  boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import AddressExhaustedError, AddressSpaceError, HeapError

#: Default size of a region granted by the address-space server (the paper
#: uses 1 MiB: "the regions are large enough (currently 1M bytes)").
DEFAULT_REGION_BYTES = 1 << 20

#: Lowest address handed out for dynamic objects.  Everything below is
#: modeled as the program image (code and static data), replicated on all
#: nodes by virtue of being the same image.
HEAP_BASE = 1 << 24

#: One past the highest usable address (a 40-bit space; the VAX had 32 bits
#: but nothing here depends on the exact width).
ADDRESS_LIMIT = 1 << 40

#: All heap allocations are rounded up to this many bytes.  Descriptors sit at
#: the front of an object, so alignment keeps descriptor addresses distinct.
ALLOC_ALIGN = 16


@dataclass(frozen=True)
class Region:
    """A contiguous slice of the global address space owned by one node."""

    base: int
    size: int
    owner_node: int

    @property
    def limit(self) -> int:
        """One past the last address in the region."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.limit


class AddressSpaceServer:
    """Hands out disjoint regions of the global address space to nodes.

    The server is the only authority for the region map; nodes keep local
    caches (a :class:`RegionMap`) that are filled on demand.  Grants are
    recorded so that ``home_node(address)`` can be answered for any address
    ever handed out.
    """

    def __init__(self, region_bytes: int = DEFAULT_REGION_BYTES,
                 base: int = HEAP_BASE,
                 limit: int = ADDRESS_LIMIT) -> None:
        if region_bytes <= 0 or region_bytes % ALLOC_ALIGN:
            raise AddressSpaceError(
                f"region size must be a positive multiple of {ALLOC_ALIGN}, "
                f"got {region_bytes}")
        self.region_bytes = region_bytes
        self._next_base = base
        self._limit = limit
        self._regions: List[Region] = []
        #: grants[node] -> list of regions granted to that node, in order
        self.grants: Dict[int, List[Region]] = {}

    def grant_region(self, node: int) -> Region:
        """Grant the next unused region to ``node``."""
        if self._next_base + self.region_bytes > self._limit:
            raise AddressExhaustedError(
                "global address space exhausted "
                f"(limit {self._limit:#x})")
        region = Region(self._next_base, self.region_bytes, node)
        self._next_base += self.region_bytes
        self._regions.append(region)
        self.grants.setdefault(node, []).append(region)
        return region

    def region_for(self, address: int) -> Region:
        """Return the region containing ``address``.

        Raises :class:`AddressSpaceError` for addresses that were never
        granted (references to such addresses are bugs, not remote objects).
        """
        index = self._find(address)
        if index is None:
            raise AddressSpaceError(f"address {address:#x} is in no region")
        return self._regions[index]

    def home_node(self, address: int) -> int:
        """The node whose heap contains ``address`` — its *home node*."""
        return self.region_for(address).owner_node

    def regions(self) -> Iterator[Region]:
        return iter(self._regions)

    def _find(self, address: int) -> Optional[int]:
        # Regions are granted with monotonically increasing bases, so a
        # binary search over the grant order is exact.
        lo, hi = 0, len(self._regions) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            region = self._regions[mid]
            if address < region.base:
                hi = mid - 1
            elif address >= region.limit:
                lo = mid + 1
            else:
                return mid
        return None


class RegionMap:
    """A node-local cache of region grants.

    Nodes learn about regions lazily (when the server grants them one, or
    when they first see an address in an unknown region and ask the server).
    """

    def __init__(self) -> None:
        self._regions: Dict[int, Region] = {}

    def add(self, region: Region) -> None:
        existing = self._regions.get(region.base)
        if existing is not None and existing != region:
            raise AddressSpaceError(
                f"conflicting grants for region base {region.base:#x}")
        self._regions[region.base] = region

    def lookup(self, address: int) -> Optional[Region]:
        """Region containing ``address`` if cached locally, else ``None``."""
        for region in self._regions.values():
            if region.contains(address):
                return region
        return None

    def __len__(self) -> int:
        return len(self._regions)


@dataclass
class _Block:
    """A heap block: address, size, and whether it is currently allocated."""

    address: int
    size: int
    allocated: bool = True


class NodeHeap:
    """Per-node allocator over regions granted by the address-space server.

    Fresh allocations are carved from the tail of the newest region (bump
    allocation).  Freed blocks are kept on per-size free lists and are only
    ever reused whole — never split, never coalesced — per section 3.2, so
    a dangling reference to a freed-and-reused address still denotes the
    start of some object's descriptor.
    """

    def __init__(self, node: int, server: AddressSpaceServer,
                 on_grant: Optional[Callable[[Region], None]] = None
                 ) -> None:
        """``on_grant`` is called with each new :class:`Region` granted; the
        backends use it to propagate grants into their region caches."""
        self.node = node
        self._server = server
        self._on_grant = on_grant
        self._regions: List[Region] = []
        self._bump = 0          # next free address in the newest region
        self._bump_limit = 0    # end of the newest region
        self._free: Dict[int, List[int]] = {}   # size -> [addresses]
        self._blocks: Dict[int, _Block] = {}    # address -> block
        self.regions_requested = 0
        self.bytes_allocated = 0

    def allocate(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the block's virtual address."""
        if size <= 0:
            raise HeapError(f"allocation size must be positive, got {size}")
        size = _round_up(size, ALLOC_ALIGN)
        free_list = self._free.get(size)
        if free_list:
            address = free_list.pop()
            block = self._blocks[address]
            block.allocated = True
        else:
            address = self._bump_allocate(size)
            self._blocks[address] = _Block(address, size)
        self.bytes_allocated += size
        return address

    def free(self, address: int) -> None:
        """Return a block to the free pool (it will only be reused whole)."""
        block = self._blocks.get(address)
        if block is None:
            raise HeapError(f"free of unallocated address {address:#x}")
        if not block.allocated:
            raise HeapError(f"double free of address {address:#x}")
        block.allocated = False
        self._free.setdefault(block.size, []).append(address)
        self.bytes_allocated -= block.size

    def block_size(self, address: int) -> int:
        block = self._blocks.get(address)
        if block is None:
            raise HeapError(f"no block at address {address:#x}")
        return block.size

    def owns(self, address: int) -> bool:
        """True if ``address`` lies in a region granted to this node."""
        return any(region.contains(address) for region in self._regions)

    def _bump_allocate(self, size: int) -> int:
        if size > self._server.region_bytes:
            raise HeapError(
                f"allocation of {size} bytes exceeds region size "
                f"{self._server.region_bytes}")
        if self._bump + size > self._bump_limit:
            self._extend()
        address = self._bump
        self._bump += size
        return address

    def _extend(self) -> None:
        """Request a fresh region from the address-space server.

        The paper notes this is rare in practice because regions are large;
        ``regions_requested`` lets tests and benchmarks confirm that.
        """
        region = self._server.grant_region(self.node)
        self._regions.append(region)
        self._bump = region.base
        self._bump_limit = region.limit
        self.regions_requested += 1
        if self._on_grant is not None:
            self._on_grant(region)


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align
