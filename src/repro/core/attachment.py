"""Attachment groups (paper section 2.3).

``Attach(a, b)`` declares that object ``a`` is attached to object ``b``:
attached structures "move together and are always guaranteed to be
co-located".  Unlike Emerald, where attachment is fixed at compile time,
Amber attachments are created and dissolved dynamically.

We model attachments as an undirected-for-grouping, directed-for-bookkeeping
graph: edges remember their direction (so ``Unattach(a)`` can sever exactly
the edges ``a -> *``), but the unit of motion is the *weakly connected
component* — moving any member moves every object transitively attached in
either direction.  That is the strongest reading of the co-location
guarantee and the one the mobility protocols in both backends enforce.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Set

from repro.errors import AttachmentError


class AttachmentGraph:
    """Tracks which objects are attached to which.

    Keys are opaque hashable object identifiers (virtual addresses in both
    backends).  The graph only stores objects that participate in at least
    one attachment; everything else is implicitly a singleton group.
    """

    def __init__(self) -> None:
        #: out[a] = set of objects a is attached to (a -> b edges).
        self._out: Dict[Hashable, Set[Hashable]] = {}
        #: incoming[b] = set of objects attached to b.
        self._in: Dict[Hashable, Set[Hashable]] = {}

    def attach(self, obj: Hashable, to: Hashable) -> None:
        """Attach ``obj`` to ``to``.  Idempotent; self-attachment is an
        error."""
        if obj == to:
            raise AttachmentError(f"cannot attach object {obj!r} to itself")
        self._out.setdefault(obj, set()).add(to)
        self._in.setdefault(to, set()).add(obj)

    def unattach(self, obj: Hashable) -> None:
        """Sever every attachment *made by* ``obj`` (edges ``obj -> *``).

        Attachments other objects made *to* ``obj`` are unaffected, matching
        the paper's pairing of ``Attach`` (one direction) with ``Unattach``.
        Raises if ``obj`` has no outgoing attachments.
        """
        targets = self._out.pop(obj, None)
        if not targets:
            raise AttachmentError(f"object {obj!r} is not attached")
        for target in targets:
            incoming = self._in.get(target)
            if incoming is not None:
                incoming.discard(obj)
                if not incoming:
                    del self._in[target]
        if obj in self._out and not self._out[obj]:
            del self._out[obj]

    def is_attached(self, obj: Hashable) -> bool:
        """True if ``obj`` has any outgoing attachment."""
        return bool(self._out.get(obj))

    def attachments_of(self, obj: Hashable) -> Set[Hashable]:
        """The objects ``obj`` is directly attached to."""
        return set(self._out.get(obj, ()))

    def group(self, obj: Hashable) -> List[Hashable]:
        """The co-location group of ``obj``: its weakly connected component.

        Always contains ``obj`` itself; returned in deterministic BFS order
        (ties broken by ``repr`` for heterogeneous keys, numerically for the
        integer addresses both backends use).
        """
        seen: Set[Hashable] = {obj}
        order: List[Hashable] = [obj]
        queue = deque([obj])
        while queue:
            current = queue.popleft()
            neighbors = set(self._out.get(current, ()))
            neighbors |= self._in.get(current, set())
            for neighbor in _sorted(neighbors):
                if neighbor not in seen:
                    seen.add(neighbor)
                    order.append(neighbor)
                    queue.append(neighbor)
        return order

    def members(self) -> Set[Hashable]:
        """Every object participating in at least one attachment."""
        return set(self._out) | set(self._in)

    def drop(self, obj: Hashable) -> None:
        """Remove ``obj`` and every edge touching it (object destroyed)."""
        for target in self._out.pop(obj, set()):
            incoming = self._in.get(target)
            if incoming is not None:
                incoming.discard(obj)
                if not incoming:
                    del self._in[target]
        for source in self._in.pop(obj, set()):
            outgoing = self._out.get(source)
            if outgoing is not None:
                outgoing.discard(obj)
                if not outgoing:
                    del self._out[source]


def _sorted(items: Iterable[Hashable]) -> List[Hashable]:
    try:
        return sorted(items)  # type: ignore[type-var]
    except TypeError:
        return sorted(items, key=repr)
