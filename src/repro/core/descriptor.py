"""Object descriptors (paper section 3.2).

Every Amber object is referenced by a virtual address that is valid on every
node, and every node holds a *descriptor* for the object saying whether it is
locally resident.  An object is laid out as ``descriptor || representation``,
so the object's address *is* its descriptor's address.

The paper's key trick: descriptors on nodes the object has never visited are
*uninitialized* (the backing page is zero-filled), and an uninitialized
descriptor is interpreted as "not resident, location unknown — ask the home
node".  We model that by simply having no table entry: a miss in the
:class:`DescriptorTable` is the zero-filled page.

Descriptor states:

``RESIDENT``
    The object lives here and may be invoked directly.  Immutable objects may
    be resident (replicated) on many nodes at once.
``FORWARDED``
    The object moved away; ``forward_to`` is the last known location — the
    head of a forwarding chain (section 3.3).
missing entry
    Uninitialized: route to the home node derived from the address.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import DescriptorError


class DescriptorState(enum.Enum):
    RESIDENT = "resident"
    FORWARDED = "forwarded"


@dataclass
class Descriptor:
    """One node's view of one object."""

    state: DescriptorState
    #: Last known location when FORWARDED; meaningless when RESIDENT.
    forward_to: Optional[int] = None
    #: Node holding this object's checkpoint epochs (crash recovery);
    #: ``None`` when no backup has been assigned from here.
    backup_node: Optional[int] = None
    #: Latest checkpoint epoch shipped (or promoted) from this node.
    epoch: int = 0

    @property
    def resident(self) -> bool:
        return self.state is DescriptorState.RESIDENT


class DescriptorTable:
    """All descriptors held by a single node, keyed by virtual address."""

    def __init__(self, node: int) -> None:
        self.node = node
        self._table: Dict[int, Descriptor] = {}

    def lookup(self, address: int) -> Optional[Descriptor]:
        """The descriptor for ``address``, or ``None`` if uninitialized."""
        return self._table.get(address)

    def is_resident(self, address: int) -> bool:
        descriptor = self._table.get(address)
        return descriptor is not None and descriptor.resident

    def set_resident(self, address: int) -> None:
        """Install or overwrite a RESIDENT descriptor (object arrived/created
        here, or an immutable replica was installed)."""
        self._table[address] = Descriptor(DescriptorState.RESIDENT)

    def set_forwarding(self, address: int, forward_to: int) -> None:
        """Record that the object moved away, leaving a forwarding address."""
        if forward_to == self.node:
            raise DescriptorError(
                f"node {self.node}: forwarding address for {address:#x} "
                "may not point at this node itself")
        self._table[address] = Descriptor(DescriptorState.FORWARDED,
                                          forward_to)

    def update_hint(self, address: int, forward_to: int) -> None:
        """Refresh a stale forwarding hint (path caching, section 3.3).

        A RESIDENT descriptor is never downgraded by a hint: hints are only
        advisory location caches.
        """
        descriptor = self._table.get(address)
        if descriptor is not None and descriptor.resident:
            return
        if forward_to == self.node:
            return
        self._table[address] = Descriptor(DescriptorState.FORWARDED,
                                          forward_to)

    def set_backup(self, address: int, backup_node: Optional[int],
                   epoch: int) -> None:
        """Record where ``address``'s latest checkpoint epoch was shipped
        (crash recovery).  Creates a RESIDENT descriptor if none exists —
        only the node currently holding an object checkpoints it."""
        descriptor = self._table.get(address)
        if descriptor is None:
            descriptor = Descriptor(DescriptorState.RESIDENT)
            self._table[address] = descriptor
        descriptor.backup_node = backup_node
        descriptor.epoch = epoch

    def clear(self, address: int) -> None:
        """Drop the descriptor (object deleted; page returns to zero-fill)."""
        self._table.pop(address, None)

    def items(self) -> List[Tuple[int, Descriptor]]:
        """Snapshot of (address, descriptor) pairs — used by crash
        recovery to find forwarding entries that did not survive."""
        return list(self._table.items())

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, address: int) -> bool:
        return address in self._table
