"""Backend-agnostic Amber object model.

This subpackage implements the machinery of the paper that is independent of
*how* programs execute: the global virtual address space (section 3.1), object
descriptors and the uninitialized-descriptor convention (3.2), forwarding
address chains with home-node fallback (3.3), attachment groups and
immutability (2.3), and the calibrated cost model behind Table 1.

Both execution backends build on these pieces: :mod:`repro.sim` (the
deterministic discrete-event cluster used for the performance figures) and
:mod:`repro.runtime` (the live multi-process runtime).
"""

from repro.core.address_space import (
    DEFAULT_REGION_BYTES,
    AddressSpaceServer,
    NodeHeap,
    Region,
)
from repro.core.attachment import AttachmentGraph
from repro.core.costs import CostModel
from repro.core.descriptor import Descriptor, DescriptorState, DescriptorTable

__all__ = [
    "AddressSpaceServer",
    "AttachmentGraph",
    "CostModel",
    "DEFAULT_REGION_BYTES",
    "Descriptor",
    "DescriptorState",
    "DescriptorTable",
    "NodeHeap",
    "Region",
]
