"""Locating mobile objects via forwarding-address chains (section 3.3).

When an object moves it leaves a forwarding address in its descriptor on the
node it left.  A request arriving at a node where the object is not resident
follows the chain hop by hop; if the local descriptor is *uninitialized* the
request is routed to the object's home node (derived from its address), which
by construction has a descriptor for every object created there.

Following a chain is expensive but self-limiting: every node along the path
caches the object's final location, so subsequent requests take one hop
(Fowler's path compression).  :func:`resolve` implements the pure routing
logic; the execution backends replay the returned path with real (or
simulated) messages and charge per-hop costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.descriptor import DescriptorTable
from repro.errors import ObjectNotFoundError


@dataclass
class Route:
    """The path a locate request takes through the cluster.

    ``path`` starts at the requesting node and ends at the node where the
    object was found resident.  ``hops`` is ``len(path) - 1`` — the number of
    network traversals.  ``via_home`` records whether the home-node fallback
    was needed (uninitialized descriptor somewhere along the way).
    """

    path: List[int]
    via_home: bool

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    @property
    def destination(self) -> int:
        return self.path[-1]


def resolve(address: int, start_node: int,
            tables: Dict[int, DescriptorTable],
            home_node: Callable[[int], int],
            max_hops: int = 1024) -> Route:
    """Compute the route a request for ``address`` takes from ``start_node``.

    ``tables`` maps node id to that node's descriptor table; ``home_node``
    derives an address's home from the region map.  Raises
    :class:`ObjectNotFoundError` if the chain dead-ends (which indicates a
    corrupted descriptor graph — a deleted object, or a cycle).
    """
    path = [start_node]
    via_home = False
    node = start_node
    for _ in range(max_hops):
        table = tables[node]
        descriptor = table.lookup(address)
        if descriptor is not None and descriptor.resident:
            return Route(path, via_home)
        if descriptor is None:
            # Uninitialized: zero-filled page => ask the home node.
            home = home_node(address)
            if home == node:
                # We *are* the home node and have no descriptor: the object
                # was never created (or has been destroyed).
                raise ObjectNotFoundError(
                    f"object {address:#x} unknown at its home node {node}")
            via_home = True
            node = home
        else:
            next_node = descriptor.forward_to
            if next_node is None:
                raise ObjectNotFoundError(
                    f"forwarding descriptor for {address:#x} at node "
                    f"{node} has no destination")
            if next_node in path and next_node != path[-1]:
                # A cycle can only arise from descriptor corruption; the
                # protocols in both backends update source and destination
                # descriptors atomically with respect to the move.
                raise ObjectNotFoundError(
                    f"forwarding cycle for object {address:#x}: "
                    f"{path + [next_node]}")
            node = next_node
        path.append(node)
    raise ObjectNotFoundError(
        f"forwarding chain for {address:#x} exceeded {max_hops} hops")


def compress_path(route: Route, address: int,
                  tables: Dict[int, DescriptorTable]) -> None:
    """Cache the object's final location on every node along the route.

    "the object's last known location is cached on all nodes along the chain
    so that the object can be located quickly on subsequent references."
    """
    destination = route.destination
    for node in route.path[:-1]:
        tables[node].update_hint(address, destination)
