"""The calibrated cost model behind every simulated charge (Table 1).

The paper measures five primitive latencies on 4-CPU CVAX Fireflies on a
10 Mbit/s Ethernet (Table 1):

====================== ============
object create           0.18 ms
local invoke/return     0.012 ms
remote invoke/return    8.32 ms
object move            12.43 ms
thread start/join       1.33 ms
====================== ============

:class:`CostModel` decomposes these into the lower-level charges the
simulated Amber kernel applies (trap handling, marshalling, wire time,
dispatch, preemption...).  The default values — :meth:`CostModel.firefly` —
are chosen so the microbenchmarks in ``repro.bench.table1`` land exactly on
the paper's numbers under the paper's stated conditions: light load, moving
objects and threads fit in one network packet, destination found via a
one-hop forwarding chain.

The decomposition (all values in microseconds):

* local invoke/return  = ``local_invoke_us + local_return_us``
  = 8 + 4 = **12**
* object create        = ``heap_alloc_us + descriptor_init_us``
  = 80 + 100 = **180**
* one-way thread migration (empty payload)
  = ``remote_trap_us + thread_marshal_us``  (source CPU)
  + ``net_latency_us + thread_packet_bytes * per_byte_us``  (wire)
  + ``thread_unmarshal_us + dispatch_us``  (destination CPU)
  = 150 + 900 + 800 + 800 + 900 + 604 = 4154
* remote invoke/return = local invoke/return + 2 × one-way migration
  = 12 + 8308 = **8320**
* thread start/join    = ``thread_start_us + dispatch_us + thread_exit_us +
  join_us`` = 400 + 604 + 200 + 126 = **1330**
  (creating the thread *object* is an ordinary object create, charged
  separately, as in the paper's benchmark.)
* object move (1000-byte object, 4-CPU source node, destination known)
  = ``move_setup_us`` + ``preempt_us × (cpus-1)`` + ``object_marshal_us``
  + wire(object) + ``object_install_us`` + wire(ack) + ``move_complete_us``
  = 1500 + 1200 + 2500 + 1600 + 2500 + 880 + 2250 = **12430**

The per-byte wire cost 0.8 us/byte is exactly 10 Mbit/s; ``net_latency_us``
stands in for controller + software latency per message.  Section 3.5's
observation that "the need to preempt all running threads causes the cost of
mobility to increase as processors are added to a node" falls out of the
``preempt_us × (cpus-1)`` term and is measured by ablation A4.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Primitive costs charged by the simulated cluster, in microseconds
    (except byte counts).  Instances are immutable; derive variants with
    :meth:`replace`."""

    # --- CPU: invocation path -------------------------------------------
    #: Entry cost of a local invocation: frame push + residency check + call.
    local_invoke_us: float = 8.0
    #: Return cost: frame pop + return-time residency check.
    local_return_us: float = 4.0
    #: Kernel trap when a residency check fails (branch to kernel, decode).
    remote_trap_us: float = 150.0
    #: A co-residency-optimized call (section 3.6: "fast inline function
    #: calls" when co-location is guaranteed): no residency check at all.
    inline_call_us: float = 1.0
    #: Residency check alone (one branch-on-bit instruction) — charged on
    #: context-switch-in checks during move protocols.
    residency_check_us: float = 0.3

    # --- CPU: object management -----------------------------------------
    heap_alloc_us: float = 80.0
    descriptor_init_us: float = 100.0
    #: Marshal / install an object's representation for a move.
    object_marshal_us: float = 2500.0
    object_install_us: float = 2500.0
    #: Initiating a move: mark descriptor non-resident, set forwarding addr.
    move_setup_us: float = 1500.0
    #: Handling the move acknowledgement and finishing source-side cleanup.
    move_complete_us: float = 2250.0
    #: Interrupting one running CPU so its thread makes a residency check.
    preempt_us: float = 400.0

    # --- CPU: threads and scheduling ------------------------------------
    #: Pack / unpack a thread (control state + active stack pieces).
    thread_marshal_us: float = 900.0
    thread_unmarshal_us: float = 900.0
    #: Making a thread runnable and switching a CPU to it.
    dispatch_us: float = 604.0
    #: Start(): stack setup and enqueue of a new thread.
    thread_start_us: float = 400.0
    #: Thread termination bookkeeping.
    thread_exit_us: float = 200.0
    #: Join(): synchronizing with and reaping a finished thread.
    join_us: float = 126.0
    #: Context switch between threads on one CPU.
    context_switch_us: float = 50.0
    #: Blocking a thread on a synchronization object / waking it.
    block_us: float = 40.0
    wakeup_us: float = 40.0
    #: Scheduler quantum (Presto-style timeslicing).
    timeslice_us: float = 100_000.0

    # --- Network ----------------------------------------------------------
    #: Fixed per-message latency: controller + protocol software, both ends.
    net_latency_us: float = 800.0
    #: Wire time per byte; 0.8 us/byte == 10 Mbit/s Ethernet.
    per_byte_us: float = 0.8
    #: Bytes of a thread-migration packet (control state, stack fragment).
    thread_packet_bytes: int = 1000
    #: Bytes of a small control message (move ack, locate, wakeup).
    control_bytes: int = 100
    #: Handling cost when a node forwards a misdelivered request one hop.
    forward_hop_us: float = 150.0

    # --- Page-based DSM baseline (Ivy, section 4) -----------------------
    page_bytes: int = 1024
    #: Page-fault trap and handler entry.
    page_fault_us: float = 300.0
    #: Packing / installing a page for transfer.
    page_pack_us: float = 300.0
    page_install_us: float = 300.0
    #: Processing an invalidation request for one copy.
    invalidate_us: float = 100.0
    #: Manager bookkeeping per ownership request.
    manager_us: float = 150.0

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if isinstance(value, (int, float)) and value < 0:
                raise ValueError(
                    f"CostModel.{name} must be non-negative, got {value}")
        if self.timeslice_us <= 0:
            raise ValueError("timeslice_us must be positive")
        for name in ("page_bytes", "thread_packet_bytes", "control_bytes"):
            if getattr(self, name) <= 0:
                raise ValueError(f"CostModel.{name} must be positive")

    # --- Derived quantities ----------------------------------------------

    def wire_us(self, nbytes: int) -> float:
        """Uncontended wire time for one message of ``nbytes`` bytes."""
        return self.net_latency_us + nbytes * self.per_byte_us

    def thread_send_cpu_us(self) -> float:
        """Source-CPU cost of launching a thread migration."""
        return self.remote_trap_us + self.thread_marshal_us

    def thread_recv_cpu_us(self) -> float:
        """Destination-CPU cost of accepting a migrated thread."""
        return self.thread_unmarshal_us + self.dispatch_us

    def one_way_thread_us(self, payload_bytes: int = 0) -> float:
        """End-to-end cost of one thread migration carrying ``payload_bytes``
        of invocation arguments, excluding queueing and contention."""
        return (self.thread_send_cpu_us()
                + self.wire_us(self.thread_packet_bytes + payload_bytes)
                + self.thread_recv_cpu_us())

    def remote_invoke_return_us(self, payload_bytes: int = 0) -> float:
        """Predicted cost of a remote invoke/return pair (Table 1 row 3)."""
        return (self.local_invoke_us + self.local_return_us
                + self.one_way_thread_us(payload_bytes)
                + self.one_way_thread_us(0))

    def object_create_us(self) -> float:
        return self.heap_alloc_us + self.descriptor_init_us

    def object_move_us(self, object_bytes: int, source_cpus: int) -> float:
        """Predicted cost of moving one object (Table 1 row 4)."""
        return (self.move_setup_us
                + self.preempt_us * max(0, source_cpus - 1)
                + self.object_marshal_us
                + self.wire_us(object_bytes)
                + self.object_install_us
                + self.wire_us(self.control_bytes)
                + self.move_complete_us)

    def thread_start_join_us(self) -> float:
        """Predicted cost of Start + Join of a trivial local thread."""
        return (self.thread_start_us + self.dispatch_us
                + self.thread_exit_us + self.join_us)

    def page_transfer_us(self) -> float:
        """Uncontended cost of one DSM page fault serviced by the owner."""
        return (self.page_fault_us + self.wire_us(self.control_bytes)
                + self.manager_us + self.page_pack_us
                + self.wire_us(self.page_bytes) + self.page_install_us)

    def replace(self, **changes: float) -> "CostModel":
        """A copy with some fields changed."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def firefly(cls) -> "CostModel":
        """The default model, calibrated to Table 1 (see module docstring)."""
        return cls()

    @classmethod
    def free(cls) -> "CostModel":
        """A zero-cost model: useful in unit tests that check semantics and
        event ordering without arithmetic noise."""
        fields = {f.name: 0 if isinstance(getattr(cls(), f.name), int) else 0.0
                  for f in dataclasses.fields(cls)}
        fields["timeslice_us"] = float("inf")
        fields["per_byte_us"] = 0.0
        # Byte counts stay positive (sizes, not costs); wire time is zero
        # anyway because per_byte_us is zero.
        fields["page_bytes"] = 1
        fields["thread_packet_bytes"] = 1
        fields["control_bytes"] = 1
        return cls(**fields)
