"""AmberPerf: benchmark harness, hot-loop self-profiler, perf trajectory.

Three pieces (see ``docs/PERF.md``):

* :mod:`repro.perf.harness` — deterministic micro- and macro-benchmarks
  with warmup, repetition, and median/IQR wall-time statistics.
* :mod:`repro.perf.hotprof` — host-time phase attribution for the
  simulator's hot loop, including per-subsystem hook overhead.
* :mod:`repro.perf.benchfile` — the versioned ``BENCH_<rev>.json``
  format, machine fingerprinting, and the regression-flagging compare.

This ``__init__`` stays lazy (PEP 562): :mod:`repro.sim.program` imports
``repro.perf.hotprof`` on the simulator's import path, and pulling the
harness (and through it the bundled apps) into that path would be a
startup-cost regression of exactly the kind this package exists to
catch.
"""

from __future__ import annotations

_LAZY = {
    "HotLoopProfiler": "repro.perf.hotprof",
    "profile_runs": "repro.perf.hotprof",
    "render_hotloop": "repro.perf.hotprof",
    "run_suite": "repro.perf.harness",
    "SUITE": "repro.perf.harness",
    "SuiteResult": "repro.perf.harness",
    "write_bench_json": "repro.perf.benchfile",
    "load_bench": "repro.perf.benchfile",
    "validate_bench": "repro.perf.benchfile",
    "compare_benches": "repro.perf.benchfile",
    "render_compare": "repro.perf.benchfile",
    "machine_info": "repro.perf.benchfile",
    "git_rev": "repro.perf.benchfile",
}

__all__ = sorted(_LAZY)


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module 'repro.perf' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
