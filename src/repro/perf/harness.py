"""The AmberPerf benchmark harness (``repro perf``).

Deterministic benchmarks over the machinery every other subsystem leans
on, each reporting a throughput rate (events/sec, ops/sec,
schedules/sec, or messages/sec) plus wall-time statistics over warmup +
repetition (median and interquartile range — the robust pair, since
wall-clock noise on shared machines is one-sided).

Micro-benchmarks isolate one hot component:

* ``event_heap`` — the engine's event-queue churn (push/pop/cancel).
* ``scheduler_pick`` — ready-queue disciplines (FIFO and priority).
* ``dispatch`` — the generator-trampoline invocation path in
  ``sim/kernel.py`` on a single node.
* ``vector_clock`` — tick/join/covers in ``analyze/hb.py``.
* ``mesh_roundtrip`` — live ``Mesh`` TCP round-trips (full suite only;
  the fast/CI suite stays socket-free).

Macro-benchmarks run whole subsystem workloads:

* ``sor_sim`` / ``queens_sim`` / ``matmul_sim`` — the bundled apps.
* ``analyze_sor`` — a sanitized run (AmberSan interposition cost).
* ``check_explore`` — a bounded AmberCheck exploration.

``calibration`` is a fixed pure-Python loop whose rate measures the host
itself; the compare in :mod:`repro.perf.benchfile` divides by it when
two ``BENCH_*.json`` files come from different machines.

Every benchmark returns a *fingerprint* — a digest of its deterministic
outputs (event counts, simulated elapsed time, results).  Fingerprints
must be identical across repetitions; only wall-clock may vary.  The
harness records a per-benchmark ``deterministic`` verdict.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence

# ---------------------------------------------------------------------------
# Result containers
# ---------------------------------------------------------------------------


@dataclass
class BenchRun:
    """One repetition's deterministic outputs (wall time is measured by
    the harness, around the benchmark body)."""

    #: Units of work done (events, ops, schedules, messages).
    work: int
    #: Digest of the run's deterministic outputs.
    fingerprint: str = ""


@dataclass(frozen=True)
class BenchSpec:
    """A registered benchmark."""

    name: str
    kind: str                      # "micro" | "macro" | "calibration"
    unit: str                      # what ``work`` counts
    fn: Callable[[bool], BenchRun]
    #: Included in the fast (CI) suite?
    fast_ok: bool = True
    description: str = ""


@dataclass
class BenchResult:
    """Statistics for one benchmark across its repetitions."""

    name: str
    kind: str
    unit: str
    reps: int
    warmup: int
    work: int
    fingerprint: str
    deterministic: bool
    wall_s: List[float] = field(default_factory=list)
    error: str = ""

    @property
    def median_s(self) -> float:
        return statistics.median(self.wall_s) if self.wall_s else 0.0

    @property
    def iqr_s(self) -> float:
        if len(self.wall_s) < 2:
            return 0.0
        ordered = sorted(self.wall_s)
        q1, q3 = (statistics.quantiles(ordered, n=4)[0],
                  statistics.quantiles(ordered, n=4)[2])
        return q3 - q1

    @property
    def rate(self) -> float:
        """Units of work per second, at the median repetition."""
        median = self.median_s
        return self.work / median if median > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "unit": self.unit,
            "reps": self.reps,
            "warmup": self.warmup,
            "work": self.work,
            "fingerprint": self.fingerprint,
            "deterministic": self.deterministic,
            "rate": round(self.rate, 3),
            "wall_s": {
                "median": self.median_s,
                "iqr": self.iqr_s,
                "min": min(self.wall_s) if self.wall_s else 0.0,
                "max": max(self.wall_s) if self.wall_s else 0.0,
                "samples": [round(s, 6) for s in self.wall_s],
            },
            "error": self.error,
        }


@dataclass
class SuiteResult:
    """All benchmarks of one harness invocation."""

    fast: bool
    reps: int
    warmup: int
    results: List[BenchResult]

    @property
    def ok(self) -> bool:
        return all(not r.error and r.deterministic for r in self.results)

    def as_dict(self) -> Dict[str, Any]:
        return {result.name: result.as_dict()
                for result in self.results}

    def render(self) -> str:
        header = (f"{'benchmark':<16} {'kind':<12} {'unit':<10} "
                  f"{'work':>9} {'rate/s':>13} {'median ms':>10} "
                  f"{'iqr ms':>8} {'det':>4}")
        lines = [header, "-" * len(header)]
        for r in self.results:
            if r.error:
                lines.append(f"{r.name:<16} {r.kind:<12} ERROR "
                             f"{r.error}")
                continue
            lines.append(
                f"{r.name:<16} {r.kind:<12} {r.unit:<10} "
                f"{r.work:>9} {r.rate:>13,.0f} "
                f"{1e3 * r.median_s:>10.2f} {1e3 * r.iqr_s:>8.2f} "
                f"{'yes' if r.deterministic else 'NO':>4}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Micro-benchmarks
# ---------------------------------------------------------------------------


def _bench_calibration(fast: bool) -> BenchRun:
    """Fixed integer work: measures the host, not the repo."""
    n = 200_000
    acc = 0
    for i in range(n):
        acc += (i * 3) // 7
    return BenchRun(work=n, fingerprint=str(acc))


def _bench_event_heap(fast: bool) -> BenchRun:
    """Event-queue churn: interleaved chains, each tick also pushing and
    cancelling a decoy event (the lazy-deletion path)."""
    from repro.sim.engine import Simulator

    sim = Simulator()
    budget = [30_000 if fast else 150_000]

    def noop() -> None:
        pass

    def tick() -> None:
        if budget[0] <= 0:
            return
        budget[0] -= 1
        decoy = sim.schedule_us(5.0, noop)
        decoy.cancel()
        sim.schedule_us(1.0, tick)

    for lane in range(64):
        sim.schedule_us(float(lane % 7), tick)
    sim.run()
    return BenchRun(work=sim.events_run,
                    fingerprint=f"{sim.events_run}:{sim.now_ns}")


def _bench_scheduler_pick(fast: bool) -> BenchRun:
    """Ready-queue enqueue/dequeue rounds on both stock disciplines."""
    from repro.sim.scheduler import FifoScheduler, PriorityScheduler
    from repro.sim.thread import SimThread

    threads = [SimThread(tid, f"t{tid}", priority=tid % 4)
               for tid in range(32)]
    rounds = 400 if fast else 2000
    ops = 0
    order_digest = 0
    for scheduler in (FifoScheduler(), PriorityScheduler()):
        for _ in range(rounds):
            for thread in threads:
                scheduler.enqueue(thread)
            ops += len(threads)
            while True:
                picked = scheduler.dequeue()
                if picked is None:
                    break
                ops += 1
                order_digest = (order_digest * 31 + picked.tid) \
                    % 1_000_000_007
    return BenchRun(work=ops, fingerprint=f"{ops}:{order_digest}")


class _PerfCell:
    """Defined lazily below to avoid importing sim at module load."""


def _bench_dispatch(fast: bool) -> BenchRun:
    """The generator-trampoline invocation path: a single-node program
    making many local invocations (entry charge, atomic body, return
    charge) — the per-invocation kernel cost with no network in sight."""
    from repro.sim import syscalls as sc
    from repro.sim.objects import SimObject
    from repro.sim.program import run_program

    class Cell(SimObject):
        SIZE_BYTES = 64
        SANITIZE_FIELDS = False

        def __init__(self) -> None:
            self.value = 0

        def add(self, ctx: Any, n: int) -> int:
            self.value += n
            return self.value

    iters = 400 if fast else 2000

    def main(ctx: Any):
        cell = yield sc.New(Cell)
        total = 0
        for i in range(iters):
            total = yield sc.Invoke(cell, "add", 1)
        return total

    result = run_program(main, nodes=1, cpus_per_node=1)
    events = result.cluster.sim.events_run
    return BenchRun(
        work=events,
        fingerprint=f"{events}:{result.elapsed_us}:{result.value}")


def _bench_vector_clock(fast: bool) -> BenchRun:
    """tick/join/covers churn across a small thread population — the
    inner loop of AmberSan's happens-before analysis."""
    from repro.analyze.hb import VectorClock

    n = 20_000 if fast else 100_000
    clocks = [VectorClock() for _ in range(8)]
    ops = 0
    covered = 0
    for i in range(n):
        a = clocks[i % 8]
        b = clocks[(5 * i + 1) % 8]
        a.tick(i % 8)
        b.join(a)
        if b.covers(a.epoch(i % 8)):
            covered += 1
        ops += 3
    digest = sum(component for clock in clocks
                 for _, component in clock.items())
    return BenchRun(work=ops, fingerprint=f"{ops}:{covered}:{digest}")


def _bench_mesh_roundtrip(fast: bool) -> BenchRun:
    """Live transport: ping-pong over two loopback Mesh nodes.  Wall
    time includes framing, pickling, TCP, and the reader threads — the
    end-to-end cost of one control message on the live runtime."""
    import queue

    from repro.runtime.transport import Mesh

    n = 300 if fast else 1500
    inbox_a: "queue.Queue" = queue.Queue()
    inbox_b: "queue.Queue" = queue.Queue()
    mesh_a = Mesh(0, lambda peer, msg: inbox_a.put(msg))
    mesh_b = Mesh(1, lambda peer, msg: inbox_b.put(msg))
    try:
        directory = {0: mesh_a.address, 1: mesh_b.address}
        mesh_a.set_directory(directory)
        mesh_b.set_directory(directory)
        for i in range(n):
            mesh_a.send(1, ("ping", i))
            assert inbox_b.get(timeout=10.0) == ("ping", i)
            mesh_b.send(0, ("pong", i))
            assert inbox_a.get(timeout=10.0) == ("pong", i)
    finally:
        mesh_a.close()
        mesh_b.close()
    return BenchRun(work=2 * n, fingerprint=str(2 * n))


# ---------------------------------------------------------------------------
# Macro-benchmarks
# ---------------------------------------------------------------------------


def _events_fingerprint(result: Any) -> BenchRun:
    events = result.cluster.sim.events_run
    return BenchRun(work=events,
                    fingerprint=f"{events}:{result.elapsed_us}")


def _bench_sor_sim(fast: bool) -> BenchRun:
    from repro.apps.sor import SorProblem, run_amber_sor

    problem = (SorProblem(rows=40, cols=280, iterations=3) if fast
               else SorProblem(rows=80, cols=560, iterations=8))
    result = run_amber_sor(problem, nodes=2, cpus_per_node=2)
    return _events_fingerprint(result)


def _bench_queens_sim(fast: bool) -> BenchRun:
    from repro.apps.queens import run_amber_queens

    result = run_amber_queens(n=6 if fast else 8, nodes=2,
                              cpus_per_node=2)
    return _events_fingerprint(result)


def _bench_matmul_sim(fast: bool) -> BenchRun:
    from repro.apps.matmul import run_matmul

    size = 24 if fast else 48
    result = run_matmul(m=size, k=size, n=size, nodes=2,
                        cpus_per_node=2)
    return _events_fingerprint(result)


def _bench_analyze_sor(fast: bool) -> BenchRun:
    """A sanitized run: the same SOR workload under AmberSan's field
    interposition and vector-clock updates."""
    from repro.analyze.runtime import sanitize_runs
    from repro.apps.sor import SorProblem, run_amber_sor

    problem = (SorProblem(rows=20, cols=140, iterations=2) if fast
               else SorProblem(rows=40, cols=280, iterations=3))
    with sanitize_runs() as sanitizers:
        result = run_amber_sor(problem, nodes=2, cpus_per_node=2)
    findings = sum(len(s.report().findings) for s in sanitizers)
    events = result.cluster.sim.events_run
    return BenchRun(
        work=events,
        fingerprint=f"{events}:{result.elapsed_us}:{findings}")


def _bench_check_explore(fast: bool) -> BenchRun:
    """A bounded AmberCheck exploration; work counts schedules."""
    from repro.analyze.check import check_program
    from repro.analyze.fixtures import run_hidden_race

    budget = 30 if fast else 120
    report = check_program(lambda: run_hidden_race(0),
                           name="perf", budget=budget)
    return BenchRun(
        work=report.schedules,
        fingerprint=(f"{report.schedules}:{report.exhausted}:"
                     f"{sorted(report.signatures())}:"
                     f"{len(report.fingerprints)}"))


# ---------------------------------------------------------------------------
# Registry and runner
# ---------------------------------------------------------------------------

SUITE: List[BenchSpec] = [
    BenchSpec("calibration", "calibration", "ops", _bench_calibration,
              description="fixed integer loop (host speed reference)"),
    BenchSpec("event_heap", "micro", "events", _bench_event_heap,
              description="engine event-queue churn"),
    BenchSpec("scheduler_pick", "micro", "ops", _bench_scheduler_pick,
              description="ready-queue enqueue/dequeue disciplines"),
    BenchSpec("dispatch", "micro", "events", _bench_dispatch,
              description="generator-trampoline local invocations"),
    BenchSpec("vector_clock", "micro", "ops", _bench_vector_clock,
              description="happens-before clock ops"),
    BenchSpec("mesh_roundtrip", "micro", "messages",
              _bench_mesh_roundtrip, fast_ok=False,
              description="live Mesh TCP round-trips (loopback)"),
    BenchSpec("sor_sim", "macro", "events", _bench_sor_sim,
              description="SOR on the simulated cluster"),
    BenchSpec("queens_sim", "macro", "events", _bench_queens_sim,
              description="n-queens on the simulated cluster"),
    BenchSpec("matmul_sim", "macro", "events", _bench_matmul_sim,
              description="matmul on the simulated cluster"),
    BenchSpec("analyze_sor", "macro", "events", _bench_analyze_sor,
              description="sanitized SOR run (AmberSan attached)"),
    BenchSpec("check_explore", "macro", "schedules",
              _bench_check_explore,
              description="bounded AmberCheck exploration"),
]

_BY_NAME: Dict[str, BenchSpec] = {spec.name: spec for spec in SUITE}


def bench_names(fast: bool = False) -> List[str]:
    return [spec.name for spec in SUITE if spec.fast_ok or not fast]


def run_benchmark(spec: BenchSpec, fast: bool, reps: int,
                  warmup: int) -> BenchResult:
    """Warm up, then measure ``reps`` repetitions of one benchmark."""
    walls: List[float] = []
    runs: List[BenchRun] = []
    try:
        for _ in range(warmup):
            spec.fn(fast)
        for _ in range(max(1, reps)):
            t0 = perf_counter()
            run = spec.fn(fast)
            walls.append(perf_counter() - t0)
            runs.append(run)
    except Exception as error:  # noqa: BLE001 - recorded, not fatal
        return BenchResult(
            name=spec.name, kind=spec.kind, unit=spec.unit,
            reps=reps, warmup=warmup, work=0, fingerprint="",
            deterministic=False, wall_s=walls,
            error=f"{type(error).__name__}: {error}")
    deterministic = (len({run.fingerprint for run in runs}) == 1
                     and len({run.work for run in runs}) == 1)
    return BenchResult(
        name=spec.name, kind=spec.kind, unit=spec.unit,
        reps=len(runs), warmup=warmup, work=runs[0].work,
        fingerprint=runs[0].fingerprint, deterministic=deterministic,
        wall_s=walls)


def run_suite(fast: bool = False, reps: int = 3, warmup: int = 1,
              only: Optional[Sequence[str]] = None,
              progress: Optional[Callable[[str], None]] = None
              ) -> SuiteResult:
    """Run the (selected) suite and collect per-benchmark statistics."""
    selected: List[BenchSpec] = []
    for spec in SUITE:
        if only is not None:
            if spec.name in only:
                selected.append(spec)
        elif spec.fast_ok or not fast:
            selected.append(spec)
    unknown = set(only or ()) - {spec.name for spec in SUITE}
    if unknown:
        raise ValueError(f"unknown benchmark(s): {sorted(unknown)}")
    results = []
    for spec in selected:
        if progress is not None:
            progress(f"running {spec.name} ({spec.kind}, "
                     f"{reps} rep(s))...")
        results.append(run_benchmark(spec, fast, reps, warmup))
    return SuiteResult(fast=fast, reps=reps, warmup=warmup,
                       results=results)
