"""Hot-loop self-profiler: where does a simulated run's *host* time go?

The simulator's wall-clock cost is now the binding constraint on
AmberCheck exploration and the fault matrices, and five PRs of machinery
(tracer, sanitizer, fault injector, schedule controller) all hang hooks
on the kernel's dispatch path.  This module answers, with cheap
``perf_counter`` sampling around the *existing* hook points, the
question the simulated-time profiler (:mod:`repro.obs.profile`) cannot:
how much real time the event heap, the generator-trampoline dispatch,
and each attached subsystem's hooks cost.

Design constraints:

* **Zero cost when detached.**  The engine's fast loop
  (:meth:`repro.sim.engine.Simulator.run`) carries no timing code; only
  an attached profiler switches it to the instrumented loop, and only
  then are the subsystem hooks wrapped.
* **No per-subsystem instrumentation code.**  Attached subsystems are
  wrapped in a :class:`_TimedProxy` that times every method call, so the
  tracer/sanitizer/injector/controller themselves stay byte-identical —
  the same objects the production run uses are what get measured.
* **Import-light.**  :mod:`repro.sim.program` imports this module on its
  hot path, so it must import nothing outside the standard library.

Phases reported (seconds of host time):

``heap-pop`` / ``heap-push``
    Event-queue maintenance in the engine loop (including skipping
    cancelled events) and event insertion from anywhere.
``dispatch``
    Running event callbacks — kernel protocol steps plus user operation
    code — *exclusive* of the nested heap pushes and hook calls below.
``hook:tracer`` / ``hook:sanitizer`` / ``hook:injector`` /
``hook:controller``
    Time inside the attached subsystem's methods, per subsystem.
``loop``
    Loop-control residual (everything the named phases did not cover).

Use :func:`profile_runs` around any code that runs simulated programs::

    with profile_runs() as profiler:
        run_amber_sor(problem, nodes=2, cpus_per_node=2)
    print(render_hotloop(profiler))
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: Hook phases, in reporting order.
HOOK_NAMES = ("tracer", "sanitizer", "injector", "controller")

#: Profiler handed to every AmberProgram run started while a
#: :func:`profile_runs` block is open (mirrors the sanitizer's
#: auto-activation in repro.analyze.runtime).
_CURRENT: Optional["HotLoopProfiler"] = None


def current() -> Optional["HotLoopProfiler"]:
    """The profiler to attach to the next simulated run, if any."""
    return _CURRENT


class _TimedProxy:
    """Wraps an attached subsystem; every method call is timed into one
    accumulator.  Non-callable attributes pass straight through, so the
    wrapped object is a drop-in stand-in at its hook site."""

    def __init__(self, target: Any, acc: List[float]):
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_acc", acc)
        object.__setattr__(self, "_cache", {})

    def __getattr__(self, name: str) -> Any:
        cache = object.__getattribute__(self, "_cache")
        wrapper = cache.get(name)
        if wrapper is not None:
            return wrapper
        attr = getattr(object.__getattribute__(self, "_target"), name)
        if not callable(attr):
            return attr
        acc = object.__getattribute__(self, "_acc")

        def timed(*args: Any, **kwargs: Any) -> Any:
            t0 = perf_counter()
            try:
                return attr(*args, **kwargs)
            finally:
                acc[0] += perf_counter() - t0

        cache[name] = timed
        return timed


class HotLoopProfiler:
    """Accumulates host-time phase attribution across one or more
    simulated runs (attach/detach once per run; totals accumulate)."""

    def __init__(self, sample_every: int = 4096):
        #: Engine-loop phases (written directly by the profiled loop).
        self.heap_pop_s = 0.0
        self.heap_push_s = 0.0
        self.dispatch_s = 0.0
        self.heap_pushes = 0
        self.events = 0
        #: Wall time between attach and detach, summed over runs.
        self.total_s = 0.0
        self.runs = 0
        #: Subsystems seen attached on at least one run.
        self.attached: List[str] = []
        #: Snapshot period for the Perfetto track, in events.
        self.sample_every = max(1, sample_every)
        #: Cumulative snapshots: (host_us_since_attach, events, phases).
        self.samples: List[Tuple[float, int, Dict[str, float]]] = []
        self._hook_acc: Dict[str, List[float]] = {
            name: [0.0] for name in HOOK_NAMES}
        self._attach_state: Optional[dict] = None
        self._t0 = 0.0
        self._sample_base_us = 0.0

    # -- phase views ----------------------------------------------------

    @property
    def hook_s(self) -> Dict[str, float]:
        return {name: acc[0] for name, acc in self._hook_acc.items()}

    def phases(self) -> Dict[str, float]:
        """Named-phase seconds.  ``dispatch`` is exclusive: nested heap
        pushes and hook calls are subtracted (clamped at zero — a hook
        that itself schedules events double-books a few nanoseconds)."""
        hooks = self.hook_s
        nested = self.heap_push_s + sum(hooks.values())
        out = {
            "heap-pop": self.heap_pop_s,
            "heap-push": self.heap_push_s,
            "dispatch": max(0.0, self.dispatch_s - nested),
        }
        for name in HOOK_NAMES:
            out[f"hook:{name}"] = hooks[name]
        out["loop"] = max(
            0.0, self.total_s - self.heap_pop_s - self.dispatch_s)
        return out

    @property
    def attributed_fraction(self) -> float:
        """Fraction of the run's wall time landing in a *named* phase
        (everything except the ``loop`` residual)."""
        if self.total_s <= 0:
            return 0.0
        return min(1.0, (self.heap_pop_s + self.dispatch_s)
                   / self.total_s)

    # -- attach / detach ------------------------------------------------

    def attach(self, cluster: Any) -> None:
        """Instrument ``cluster`` for one run: switch its engine to the
        profiled loop and wrap whatever subsystems are attached."""
        if self._attach_state is not None:
            raise RuntimeError("profiler is already attached")
        from repro.analyze import runtime as _analysis

        state: dict = {"cluster": cluster}
        sim = cluster.sim
        state["sim"] = sim
        sim.profiler = self

        tracer = getattr(cluster, "tracer", None)
        if tracer is not None:
            proxy = _TimedProxy(tracer, self._hook_acc["tracer"])
            state["tracer"] = tracer
            cluster.tracer = proxy
            if getattr(cluster.network, "tracer", None) is tracer:
                cluster.network.tracer = proxy
                state["net_tracer"] = True
            self._note("tracer")

        sanitizer = _analysis.ACTIVE
        if sanitizer is not None:
            state["sanitizer"] = sanitizer
            _analysis.ACTIVE = _TimedProxy(
                sanitizer, self._hook_acc["sanitizer"])
            self._note("sanitizer")

        injector = getattr(cluster.network, "faults", None)
        if injector is not None:
            state["injector"] = injector
            cluster.network.faults = _TimedProxy(
                injector, self._hook_acc["injector"])
            self._note("injector")

        controller = _analysis.CONTROLLER
        if controller is not None:
            state["controller"] = controller
            _analysis.CONTROLLER = _TimedProxy(
                controller, self._hook_acc["controller"])
            self._note("controller")

        self._attach_state = state
        self._sample_base_us = self.total_s * 1e6
        self._t0 = perf_counter()

    def detach(self) -> None:
        """Undo :meth:`attach` and fold the run's wall time into the
        totals."""
        state = self._attach_state
        if state is None:
            return
        self.total_s += perf_counter() - self._t0
        self.runs += 1
        self._attach_state = None
        from repro.analyze import runtime as _analysis

        cluster = state["cluster"]
        state["sim"].profiler = None
        if "tracer" in state:
            cluster.tracer = state["tracer"]
            if state.get("net_tracer"):
                cluster.network.tracer = state["tracer"]
        if "sanitizer" in state:
            _analysis.ACTIVE = state["sanitizer"]
        if "injector" in state:
            cluster.network.faults = state["injector"]
        if "controller" in state:
            _analysis.CONTROLLER = state["controller"]
        self.take_sample()

    def _note(self, subsystem: str) -> None:
        if subsystem not in self.attached:
            self.attached.append(subsystem)

    # -- sampling (Perfetto track) --------------------------------------

    def take_sample(self) -> None:
        """Record a cumulative snapshot; consecutive snapshots become
        the per-window slices of the Perfetto self-profiler track."""
        if self._attach_state is not None:
            rel_us = (self._sample_base_us
                      + (perf_counter() - self._t0) * 1e6)
        else:
            rel_us = self.total_s * 1e6
        self.samples.append((rel_us, self.events, self.phases()))

    # -- export ----------------------------------------------------------

    def publish(self, metrics: Any) -> None:
        """Mirror phase totals into a metrics registry as counters
        (nanoseconds, so they stay integers) plus the event count."""
        for phase, seconds in self.phases().items():
            name = phase.replace(":", "_").replace("-", "_")
            metrics.inc(f"hotloop_{name}_ns", int(seconds * 1e9))
        metrics.inc("hotloop_events", self.events)
        metrics.inc("hotloop_heap_pushes", self.heap_pushes)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "events": self.events,
            "heap_pushes": self.heap_pushes,
            "runs": self.runs,
            "total_s": self.total_s,
            "attached": list(self.attached),
            "attributed_fraction": round(self.attributed_fraction, 4),
            "phases_s": {name: round(seconds, 6)
                         for name, seconds in self.phases().items()},
        }


@contextmanager
def profile_runs(sample_every: int = 4096
                 ) -> Iterator[HotLoopProfiler]:
    """Profile every simulated program run started inside the block.

    The mechanism behind ``repro perf --profile``: workload entry points
    build their own clusters internally, so the profiler is handed to
    :class:`repro.sim.program.AmberProgram` through this process-global,
    exactly like the sanitizer's :func:`~repro.analyze.runtime.
    sanitize_runs`.
    """
    global _CURRENT
    if _CURRENT is not None:
        raise RuntimeError("a hot-loop profiler is already active")
    profiler = HotLoopProfiler(sample_every=sample_every)
    _CURRENT = profiler
    try:
        yield profiler
    finally:
        _CURRENT = None


def render_hotloop(profiler: HotLoopProfiler,
                   title: Optional[str] = None) -> str:
    """Human-readable phase attribution report."""
    lines: List[str] = []
    lines.append(title or "Hot-loop self-profile (host time)")
    total = profiler.total_s
    events = max(1, profiler.events)
    header = (f"{'phase':<18} {'seconds':>10} {'% run':>7} "
              f"{'ns/event':>10}")
    lines.append(header)
    lines.append("-" * len(header))
    for phase, seconds in profiler.phases().items():
        share = 100.0 * seconds / total if total > 0 else 0.0
        lines.append(f"{phase:<18} {seconds:>10.4f} {share:>6.1f}% "
                     f"{1e9 * seconds / events:>10.0f}")
    lines.append("-" * len(header))
    lines.append(f"{'total':<18} {total:>10.4f} {100.0:>6.1f}% "
                 f"{1e9 * total / events:>10.0f}")
    rate = events / total if total > 0 else 0.0
    lines.append(
        f"{profiler.events} events in {total:.4f}s host time "
        f"({rate:,.0f} events/sec, {profiler.runs} run(s))")
    lines.append(
        f"attribution: {100 * profiler.attributed_fraction:.1f}% of "
        f"wall time in named phases; hooks attached: "
        f"{', '.join(profiler.attached) or 'none'}")
    return "\n".join(lines)
