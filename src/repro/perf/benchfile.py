"""``BENCH_<rev>.json``: the repo's tracked performance trajectory.

A bench file is one harness invocation frozen to disk: schema version,
machine fingerprint, git revision, and per-benchmark statistics.  CI
writes one per run, uploads it as an artifact, and compares it against
the committed baseline in ``benchmarks/baseline/``; regressions beyond
a noise threshold fail the build.

Comparing across machines is meaningless on raw wall times, so every
suite carries a ``calibration`` benchmark — a fixed pure-Python loop
whose rate measures the host itself.  When two files' machine
fingerprints differ, :func:`compare_benches` normalizes each rate by
its own file's calibration rate before computing ratios.  Same-machine
comparisons use raw rates (tighter noise).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.perf.harness import SuiteResult

#: Versioned schema tag.  Bump the suffix on breaking layout changes;
#: readers reject tags they do not understand.
SCHEMA = "amberperf-bench/1"

#: Default regression threshold: fail when a benchmark's (normalized)
#: rate drops below (1 - threshold) x old, beyond the noise floor.
DEFAULT_THRESHOLD = 0.25

_REQUIRED_TOP = ("schema", "machine", "git_rev", "fast", "reps",
                 "warmup", "benchmarks")
_REQUIRED_BENCH = ("kind", "unit", "reps", "work", "rate", "wall_s",
                   "fingerprint", "deterministic")


def machine_info() -> Dict[str, Any]:
    """Host identity: enough to tell whether two bench files are
    comparable on raw wall times, hashed into a short fingerprint."""
    info: Dict[str, Any] = {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 1,
    }
    digest = hashlib.sha256(
        json.dumps(info, sort_keys=True).encode()).hexdigest()[:16]
    info["fingerprint"] = digest
    return info


def git_rev(repo_dir: Optional[str] = None) -> str:
    """Short git revision, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_dir, capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def bench_dict(suite: SuiteResult,
               rev: Optional[str] = None) -> Dict[str, Any]:
    """The schema-shaped document for one suite run."""
    return {
        "schema": SCHEMA,
        "machine": machine_info(),
        "git_rev": rev if rev is not None else git_rev(),
        "fast": suite.fast,
        "reps": suite.reps,
        "warmup": suite.warmup,
        "benchmarks": suite.as_dict(),
    }


def write_bench_json(suite: SuiteResult, path: str,
                     rev: Optional[str] = None) -> Dict[str, Any]:
    """Write ``suite`` to ``path`` as a schema-valid bench file."""
    doc = bench_dict(suite, rev=rev)
    validate_bench(doc)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def load_bench(path: str) -> Dict[str, Any]:
    """Load and validate a bench file."""
    with open(path) as fh:
        doc = json.load(fh)
    validate_bench(doc)
    return doc


def validate_bench(doc: Any) -> None:
    """Raise :class:`ValueError` unless ``doc`` is a valid bench
    document under :data:`SCHEMA`."""
    if not isinstance(doc, dict):
        raise ValueError("bench document must be a JSON object")
    schema = doc.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"unsupported bench schema {schema!r} (expected {SCHEMA!r})")
    missing = [key for key in _REQUIRED_TOP if key not in doc]
    if missing:
        raise ValueError(f"bench document missing keys: {missing}")
    machine = doc["machine"]
    if not isinstance(machine, dict) or "fingerprint" not in machine:
        raise ValueError("bench machine info missing 'fingerprint'")
    benchmarks = doc["benchmarks"]
    if not isinstance(benchmarks, dict) or not benchmarks:
        raise ValueError("bench document has no benchmarks")
    for name, bench in benchmarks.items():
        if not isinstance(bench, dict):
            raise ValueError(f"benchmark {name!r} is not an object")
        gone = [key for key in _REQUIRED_BENCH if key not in bench]
        if gone:
            raise ValueError(
                f"benchmark {name!r} missing keys: {gone}")
        wall = bench["wall_s"]
        if not isinstance(wall, dict) or "median" not in wall:
            raise ValueError(
                f"benchmark {name!r} wall_s missing 'median'")
        if bench.get("error"):
            continue
        if not bench["deterministic"]:
            raise ValueError(
                f"benchmark {name!r} was non-deterministic: "
                "fingerprints differed across repetitions")


# ---------------------------------------------------------------------------
# Compare
# ---------------------------------------------------------------------------


@dataclass
class BenchDelta:
    """One benchmark's old-vs-new comparison."""

    name: str
    old_rate: float
    new_rate: float
    #: new/old after calibration normalization (if applied); > 1 is
    #: faster, < 1 is slower.
    ratio: float
    #: Relative IQR noise floor combined from both files.
    noise: float
    regression: bool
    improvement: bool
    note: str = ""


@dataclass
class CompareResult:
    """Full old-vs-new comparison of two bench documents."""

    deltas: List[BenchDelta]
    normalized: bool
    threshold: float
    #: Benchmarks present in only one file.
    only_old: List[str] = field(default_factory=list)
    only_new: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[BenchDelta]:
        return [d for d in self.deltas if d.regression]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _relative_iqr(bench: Dict[str, Any]) -> float:
    wall = bench.get("wall_s", {})
    median = wall.get("median", 0.0)
    iqr = wall.get("iqr", 0.0)
    return iqr / median if median > 0 else 0.0


def compare_benches(old: Dict[str, Any], new: Dict[str, Any],
                    threshold: float = DEFAULT_THRESHOLD
                    ) -> CompareResult:
    """Compare two bench documents; flag regressions beyond noise.

    A benchmark regresses when its (possibly calibration-normalized)
    rate ratio new/old drops below ``1 - max(threshold, noise)``, where
    ``noise`` combines both runs' relative IQRs — a wide-variance
    benchmark must fall further before it is flagged.  The calibration
    benchmark itself is reported but never flagged (it measures the
    host, not the repo).
    """
    validate_bench(old)
    validate_bench(new)
    old_b = old["benchmarks"]
    new_b = new["benchmarks"]
    same_machine = (old["machine"]["fingerprint"]
                    == new["machine"]["fingerprint"])
    normalized = not same_machine

    def _cal_rate(doc: Dict[str, Any]) -> float:
        cal = doc["benchmarks"].get("calibration")
        return cal["rate"] if cal and cal.get("rate") else 1.0

    old_cal, new_cal = _cal_rate(old), _cal_rate(new)
    if normalized and (old_cal <= 0 or new_cal <= 0):
        # No calibration to normalize by: fall back to raw rates but
        # note it per-delta.
        old_cal = new_cal = 1.0

    deltas: List[BenchDelta] = []
    for name in sorted(set(old_b) & set(new_b)):
        ob, nb = old_b[name], new_b[name]
        old_rate, new_rate = ob.get("rate", 0.0), nb.get("rate", 0.0)
        note = ""
        if ob.get("error") or nb.get("error"):
            deltas.append(BenchDelta(
                name, old_rate, new_rate, ratio=0.0, noise=0.0,
                regression=bool(nb.get("error")), improvement=False,
                note="errored"))
            continue
        if normalized:
            eff_old = old_rate / old_cal
            eff_new = new_rate / new_cal
            note = "calibration-normalized"
        else:
            eff_old, eff_new = old_rate, new_rate
        ratio = eff_new / eff_old if eff_old > 0 else 0.0
        noise = _relative_iqr(ob) + _relative_iqr(nb)
        bar = max(threshold, noise)
        is_cal = name == "calibration"
        regression = (not is_cal) and ratio < 1.0 - bar
        improvement = (not is_cal) and ratio > 1.0 + bar
        if is_cal:
            note = "host reference (never gated)"
        deltas.append(BenchDelta(name, old_rate, new_rate, ratio,
                                 noise, regression, improvement, note))
    return CompareResult(
        deltas=deltas, normalized=normalized, threshold=threshold,
        only_old=sorted(set(old_b) - set(new_b)),
        only_new=sorted(set(new_b) - set(old_b)))


def render_compare(result: CompareResult) -> str:
    """Human-readable compare report."""
    lines: List[str] = []
    mode = ("cross-machine (calibration-normalized)"
            if result.normalized else "same machine (raw rates)")
    lines.append(f"AmberPerf compare — {mode}, "
                 f"threshold {result.threshold:.0%}")
    header = (f"{'benchmark':<16} {'old rate/s':>13} {'new rate/s':>13} "
              f"{'ratio':>7} {'noise':>7}  verdict")
    lines.append(header)
    lines.append("-" * len(header))
    for d in result.deltas:
        if d.note == "errored":
            verdict = "ERROR"
        elif d.regression:
            verdict = "REGRESSION"
        elif d.improvement:
            verdict = "improved"
        else:
            verdict = "ok"
        if d.note and d.note != "errored":
            verdict += f" ({d.note})"
        lines.append(
            f"{d.name:<16} {d.old_rate:>13,.0f} {d.new_rate:>13,.0f} "
            f"{d.ratio:>7.2f} {d.noise:>6.1%}  {verdict}")
    for name in result.only_old:
        lines.append(f"{name:<16} (removed — present only in OLD)")
    for name in result.only_new:
        lines.append(f"{name:<16} (new — present only in NEW)")
    lines.append("-" * len(header))
    if result.ok:
        lines.append("no regressions beyond threshold")
    else:
        names = ", ".join(d.name for d in result.regressions)
        lines.append(f"{len(result.regressions)} regression(s): {names}")
    return "\n".join(lines)
