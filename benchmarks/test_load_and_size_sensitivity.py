"""Section 5's caveats about Table 1, made measurable.

The paper qualifies its microbenchmarks: "These timings should be
regarded as rough indications of the cost of the operations under light
load conditions.  Operations involving thread scheduling or network
communication are more expensive on a heavily loaded system", and "the
benchmarks assume that all moving objects and threads will fit in a
network packet".

Two sweeps verify both statements on the simulator:

* remote invoke latency vs. background load (CPU + network);
* object move latency vs. object size (linear in bytes at 0.8 us/byte).
"""

import pytest

from benchmarks.conftest import once
from repro.core.costs import CostModel
from repro.sim.cluster import ClusterConfig
from repro.sim.objects import SimObject
from repro.sim.program import AmberProgram
from repro.sim.syscalls import Compute, Fork, Invoke, Join, MoveTo, New


class Target(SimObject):
    def op(self, ctx):
        if False:
            yield None


class Noise(SimObject):
    """Background load: compute-bound threads plus remote chatter."""

    def burn(self, ctx, us):
        yield Compute(us)

    def chatter(self, ctx, peer, rounds):
        for _ in range(rounds):
            yield Invoke(peer, "op")


def remote_invoke_under_load(loaded: bool) -> float:
    def main(ctx):
        target = yield New(Target, size_bytes=1000)
        yield MoveTo(target, 1)
        noise_threads = []
        if loaded:
            # Saturate both nodes' CPUs and put traffic on the wire.
            for node in (0, 1):
                burner = yield New(Noise, on_node=node)
                for _ in range(4):
                    noise_threads.append(
                        (yield Fork(burner, "burn", 200_000)))
            far = yield New(Target, on_node=1, size_bytes=1000)
            chatterer = yield New(Noise, on_node=0)
            noise_threads.append(
                (yield Fork(chatterer, "chatter", far, 20)))
            yield Compute(5_000)   # let the noise get going
        t0 = ctx.now_us
        yield Invoke(target, "op")
        elapsed = ctx.now_us - t0
        for thread in noise_threads:
            yield Join(thread)
        return elapsed

    program = AmberProgram(ClusterConfig(nodes=2, cpus_per_node=4))
    return program.run(main).value


def move_latency_for_size(size_bytes: int) -> float:
    def main(ctx):
        obj = yield New(Target, size_bytes=size_bytes)
        t0 = ctx.now_us
        yield MoveTo(obj, 1)
        return ctx.now_us - t0

    program = AmberProgram(ClusterConfig(nodes=2, cpus_per_node=4))
    return program.run(main).value


@pytest.fixture(scope="module")
def load_results():
    return {"light": remote_invoke_under_load(False),
            "heavy": remote_invoke_under_load(True)}


def test_light_load_matches_table1(benchmark, load_results):
    got = once(benchmark, lambda: load_results)
    assert got["light"] == pytest.approx(8_320, rel=0.01)


def test_heavy_load_is_more_expensive(benchmark, load_results):
    """The paper's caveat, verified: under CPU and network load the same
    remote invocation costs measurably more (queueing for CPUs at both
    ends and for the shared wire)."""
    got = once(benchmark, lambda: load_results)
    assert got["heavy"] > 1.2 * got["light"]


def test_move_cost_linear_in_object_size(benchmark):
    sizes = [1_000, 10_000, 100_000, 1_000_000]
    latencies = once(benchmark, lambda: [move_latency_for_size(size)
                                         for size in sizes])
    per_byte = CostModel.firefly().per_byte_us
    for size, latency in zip(sizes, latencies):
        predicted = 12_430 + (size - 1_000) * per_byte
        assert latency == pytest.approx(predicted, rel=0.01)


def test_packet_sized_moves_are_the_cheap_case(benchmark):
    small, big = once(benchmark, lambda: (move_latency_for_size(1_000),
                                          move_latency_for_size(64_000)))
    assert big > 4 * small
