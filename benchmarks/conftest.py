"""Shared configuration for the benchmark suite.

Every benchmark runs a *simulated* experiment: the interesting output is
the simulated latency/speedup (asserted against the paper's shape), and
pytest-benchmark records the wall-clock cost of regenerating it.  Heavy
sweeps use ``benchmark.pedantic(rounds=1)`` so the suite stays fast.
"""

import pytest


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark fixture and return its
    result (sweeps are deterministic; re-running them only burns time)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
