"""Ablation A9: Li & Hudak's manager algorithms under the SOR workload.

The paper's Ivy discussion (section 4) implicitly assumes *some* ownership
protocol; Li & Hudak describe three.  This ablation compares them on the
same SOR run and confirms the textbook ordering: the dynamic distributed
manager (probOwner chasing — structurally Amber's forwarding addresses)
beats the fixed striped managers, which beat the single centralized
manager, because each step removes manager hops or manager hotspots.
"""

import pytest

from benchmarks.conftest import once
from repro.apps.sor import SorProblem
from repro.apps.sor.ivy_sor import run_ivy_sor

PROBLEM = SorProblem(rows=61, cols=421, iterations=5)
MODES = ("centralized", "fixed", "dynamic")


@pytest.fixture(scope="module")
def results():
    return {mode: run_ivy_sor(PROBLEM, nodes=4, cpus_per_node=4,
                              manager_mode=mode)
            for mode in MODES}


def test_regenerates(benchmark, results):
    got = once(benchmark, lambda: results)
    assert set(got) == set(MODES)


def test_all_modes_complete_the_same_computation(benchmark, results):
    got = once(benchmark, lambda: results)
    iterations = {mode: r.iterations_run for mode, r in got.items()}
    assert set(iterations.values()) == {PROBLEM.iterations}


def test_dynamic_beats_fixed_beats_centralized(benchmark, results):
    got = once(benchmark, lambda: results)
    assert got["dynamic"].elapsed_us <= got["fixed"].elapsed_us
    assert got["fixed"].elapsed_us <= got["centralized"].elapsed_us * 1.05


def test_dynamic_sends_fewest_messages(benchmark, results):
    got = once(benchmark, lambda: results)
    assert got["dynamic"].network_messages < got["fixed"].network_messages


def test_prob_owner_chases_are_bounded(benchmark, results):
    """Path compression keeps chases short: forwards stay well below one
    per fault even in steady state."""
    got = once(benchmark, lambda: results)
    dynamic = got["dynamic"]
    assert dynamic.stats.owner_forwards < dynamic.stats.total_faults
