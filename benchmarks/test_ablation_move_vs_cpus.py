"""Ablation A4: move cost vs CPUs per node (section 3.5).

"An added disadvantage is that the need to preempt all running threads
causes the cost of mobility to increase as processors are added to a
node."  The increase is linear in the CPU count with slope preempt_us.
"""

import pytest

from benchmarks.conftest import once
from repro.bench.ablations import move_cost_vs_cpus
from repro.core.costs import CostModel


@pytest.fixture(scope="module")
def rows():
    return move_cost_vs_cpus(cpu_counts=(1, 2, 4, 8, 16))


def test_regenerates(benchmark, rows):
    assert len(once(benchmark, lambda: rows)) == 5


def test_move_cost_increases_with_cpus(benchmark, rows):
    got = once(benchmark, lambda: rows)
    costs = [row.move_us for row in got]
    assert costs == sorted(costs)
    assert costs[-1] > costs[0]


def test_increase_is_linear_in_preempt_cost(benchmark, rows):
    got = once(benchmark, lambda: rows)
    preempt = CostModel.firefly().preempt_us
    for a, b in zip(got, got[1:]):
        added_cpus = b.cpus_per_node - a.cpus_per_node
        assert b.move_us - a.move_us == pytest.approx(
            added_cpus * preempt, rel=0.01)


def test_four_cpu_point_is_table1(benchmark, rows):
    got = once(benchmark, lambda: rows)
    four = {row.cpus_per_node: row.move_us for row in got}[4]
    assert four == pytest.approx(12_430, rel=0.01)
