"""Figure 1: structure of the Amber Red/Black SOR implementation.

Figure 1 is a structure diagram; this benchmark runs the real program on
three sections (as drawn) and checks the instantiated topology: one
master, one section object per stripe on its own node, computation
threads plus edge threads toward each neighbor plus one convergence
thread per section.
"""

from benchmarks.conftest import once
from repro.bench.figure1 import run_figure1


def test_figure1_topology(benchmark):
    structure = once(benchmark, run_figure1)
    print()
    print(structure.describe())

    assert structure.master_node == 0
    assert len(structure.sections) == 3
    # Sections land on distinct nodes (static placement, one per node).
    assert [s.node for s in structure.sections] == [0, 1, 2]
    for section in structure.sections:
        assert section.workers >= 1
        assert section.convergers == 1
    # Edge threads: one per neighbor — ends have one, the middle has two.
    assert [s.edge_threads for s in structure.sections] == [1, 2, 1]
