"""Ablation A5: forwarding-chain chase and path caching (section 3.3).

"It is costly to locate an object by following a forwarding chain, but
this happens rarely because the object's last known location is cached on
all nodes along the chain so that the object can be located quickly on
subsequent references."
"""

import pytest

from benchmarks.conftest import once
from repro.bench.ablations import forwarding_chase

MAX_HOPS = 6


@pytest.fixture(scope="module")
def rows():
    return forwarding_chase(max_hops=MAX_HOPS)


def test_regenerates(benchmark, rows):
    assert len(once(benchmark, lambda: rows)) == MAX_HOPS


def test_first_invoke_grows_with_chain_length(benchmark, rows):
    got = once(benchmark, lambda: rows)
    firsts = [row.first_invoke_us for row in got]
    assert firsts == sorted(firsts)
    assert firsts[-1] > firsts[0] * 1.5


def test_growth_is_roughly_linear_per_hop(benchmark, rows):
    got = once(benchmark, lambda: rows)
    increments = [b.first_invoke_us - a.first_invoke_us
                  for a, b in zip(got, got[1:])]
    # Every extra hop costs one forward + one extra wire traversal.
    assert max(increments) == pytest.approx(min(increments), rel=0.05)


def test_second_invoke_is_flat_after_caching(benchmark, rows):
    got = once(benchmark, lambda: rows)
    seconds = [row.second_invoke_us for row in got]
    assert max(seconds) == pytest.approx(min(seconds), rel=0.01)
    # And equals the one-hop remote invoke cost: the cache made every
    # chain length look like Table 1's remote invoke.
    assert seconds[0] == pytest.approx(8_320, rel=0.01)


def test_chase_never_worse_than_chain_plus_constant(benchmark, rows):
    got = once(benchmark, lambda: rows)
    for row in got:
        assert row.first_invoke_us < 8_320 + row.chain_hops * 2_000
