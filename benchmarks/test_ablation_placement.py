"""Ablation A7: higher-level object placement software (§2.3's outlook).

"the best policy for managing location is application-specific and is
best left to the program or higher-level object placement software."

The AffinityRebalancer is that software: it mines the kernel's access log
and *suggests* moves; the program applies them with ordinary MoveTo.
This benchmark measures how much of the hand-placed optimum the advisor
recovers on a phase-structured workload with a deliberately bad initial
placement.
"""

import pytest

from benchmarks.conftest import once
from repro.placement import AffinityRebalancer
from repro.sim.objects import SimObject
from repro.sim.program import run_program
from repro.sim.syscalls import Compute, Fork, Invoke, Join, MoveTo, New

NODES = 4
OBJECTS_PER_NODE = 2
ACCESSES = 12


class Record(SimObject):
    def __init__(self):
        self.hits = 0

    def touch(self, ctx):
        yield Compute(5.0)
        self.hits += 1


class Clients(SimObject):
    """One per node: hammers the records assigned to this node."""

    def consume(self, ctx, records, accesses):
        for _ in range(accesses):
            for record in records:
                yield Invoke(record, "touch")


def phase_workload(placement: str):
    """Each node repeatedly touches its own records, which start piled on
    node 0.  ``placement``: 'static' (leave them), 'advised' (apply the
    rebalancer's suggestions between a warmup and the measured phase), or
    'oracle' (hand-move each record to its consumer up front)."""

    def main(ctx):
        assignments = {}
        for node in range(NODES):
            records = []
            for _ in range(OBJECTS_PER_NODE):
                records.append((yield New(Record)))   # all on node 0
            assignments[node] = records
        consumers = {}
        for node in range(NODES):
            consumers[node] = yield New(Clients, on_node=node)

        if placement == "oracle":
            for node, records in assignments.items():
                for record in records:
                    yield MoveTo(record, node)

        def run_phase(accesses):
            threads = []
            for node in range(NODES):
                threads.append((yield Fork(consumers[node], "consume",
                                           assignments[node], accesses)))
            for thread in threads:
                yield Join(thread)

        # Warmup phase (generates the access log).
        yield from run_phase(3)

        if placement == "advised":
            rebalancer = AffinityRebalancer(min_accesses=2)
            suggestions = rebalancer.suggest(ctx.cluster)
            for suggestion in suggestions:
                yield MoveTo(suggestion.obj, suggestion.dest)
            rebalancer.reset_log(ctx.cluster)

        # Measured phase.
        t0 = ctx.now_us
        yield from run_phase(ACCESSES)
        return ctx.now_us - t0

    return main


@pytest.fixture(scope="module")
def results():
    out = {}
    for placement in ("static", "advised", "oracle"):
        out[placement] = run_program(phase_workload(placement),
                                     nodes=NODES, cpus_per_node=2).value
    return out


def test_regenerates(benchmark, results):
    got = once(benchmark, lambda: results)
    assert set(got) == {"static", "advised", "oracle"}


def test_advice_beats_static_placement(benchmark, results):
    got = once(benchmark, lambda: results)
    assert got["advised"] < got["static"] / 3


def test_advice_recovers_most_of_oracle(benchmark, results):
    """The advisor should land within 25% of hand placement."""
    got = once(benchmark, lambda: results)
    assert got["advised"] <= got["oracle"] * 1.25


def test_oracle_is_the_floor(benchmark, results):
    got = once(benchmark, lambda: results)
    assert got["oracle"] <= got["advised"] * 1.01
