"""Table 1: latency of Amber operations (paper section 5).

The simulated microbenchmarks must land on the paper's numbers under the
paper's stated conditions — this is the calibration every other
experiment builds on.
"""

import pytest

from benchmarks.conftest import once
from repro.bench.paper_data import PAPER_TABLE1_MS
from repro.bench.table1 import main as table1_main
from repro.bench.table1 import run_table1

#: The microbenchmarks are charged exactly, so the tolerance is tight.
RTOL = 0.01


def test_table1_matches_paper(benchmark):
    rows = once(benchmark, run_table1)
    assert len(rows) == len(PAPER_TABLE1_MS)
    for row in rows:
        assert row.measured_ms == pytest.approx(row.paper_ms, rel=RTOL), (
            f"{row.operation}: measured {row.measured_ms} ms, "
            f"paper {row.paper_ms} ms")
    print()
    print(table1_main())


def test_remote_to_local_ratio(benchmark):
    """Section 1.1: remote references are 3-4 orders of magnitude more
    expensive than local ones."""
    rows = once(benchmark, run_table1)
    by_name = {row.operation: row.measured_ms for row in rows}
    ratio = by_name["remote invoke/return"] / by_name["local invoke/return"]
    assert 100 <= ratio <= 10_000
