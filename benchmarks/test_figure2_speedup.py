"""Figure 2: measured speedup of the Amber Red/Black SOR program.

Shape assertions follow the paper's own conclusions:

* "Good speedups are possible in this environment" — speedup ~25 at
  8Nx4P (we accept 25% of the figure read-off);
* overlapping communication with computation beats not overlapping;
* "nearly identical speedups are achieved for all of the experiments
  involving a total of four processors (1Nx4P, 2Nx2P, 4Nx1P)";
* "Similar results ... with eight processors (2Nx4P, 4Nx2P)";
* speedup grows monotonically with total processors (at fixed CPU/node).
"""

import pytest

from benchmarks.conftest import once
from repro.bench.figure2 import main as figure2_main
from repro.bench.figure2 import run_figure2
from repro.bench.paper_data import (
    FIGURE2_SHAPE_RTOL,
    PAPER_FIGURE2_SPEEDUPS,
)

ITERATIONS = 12   # enough to amortize startup; keeps the suite quick


@pytest.fixture(scope="module")
def figure2_rows():
    return run_figure2(iterations=ITERATIONS)


def test_figure2_regenerates(benchmark):
    rows = once(benchmark, lambda: run_figure2(iterations=ITERATIONS))
    assert len(rows) == 12
    print()
    print(figure2_main(iterations=ITERATIONS))


def test_speedups_track_paper_within_band(figure2_rows, benchmark):
    rows = once(benchmark, lambda: figure2_rows)
    for row in rows:
        if row.paper_speedup is None:
            continue
        assert row.speedup == pytest.approx(
            row.paper_speedup, rel=FIGURE2_SHAPE_RTOL), (
            f"{row.label}: {row.speedup:.2f} vs paper "
            f"{row.paper_speedup:.2f}")


def test_headline_8nx4p_speedup(figure2_rows, benchmark):
    rows = once(benchmark, lambda: figure2_rows)
    by_label = {row.label: row.speedup for row in rows}
    assert by_label["8Nx4P"] > 18.0   # "a speedup of 25" band


def test_overlap_beats_no_overlap(figure2_rows, benchmark):
    rows = once(benchmark, lambda: figure2_rows)
    by_label = {row.label: row.speedup for row in rows}
    assert by_label["8Nx4P"] > by_label["8Nx4P (no overlap)"]


def test_four_cpu_configs_nearly_identical(figure2_rows, benchmark):
    rows = once(benchmark, lambda: figure2_rows)
    by_label = {row.label: row.speedup for row in rows}
    four = [by_label["1Nx4P"], by_label["2Nx2P"], by_label["4Nx1P"]]
    assert max(four) / min(four) < 1.10


def test_eight_cpu_configs_similar(figure2_rows, benchmark):
    rows = once(benchmark, lambda: figure2_rows)
    by_label = {row.label: row.speedup for row in rows}
    eight = [by_label["2Nx4P"], by_label["4Nx2P"]]
    assert max(eight) / min(eight) < 1.10


def test_monotone_scaling_at_4p_per_node(figure2_rows, benchmark):
    rows = once(benchmark, lambda: figure2_rows)
    by_label = {row.label: row.speedup for row in rows}
    curve = [by_label[label] for label in
             ("1Nx4P", "2Nx4P", "3Nx4P", "4Nx4P", "6Nx4P", "8Nx4P")]
    assert curve == sorted(curve)
