"""Ablation A3: false sharing (section 4.2).

"If data items are smaller than a page, a page-based coherency scheme
incurs unnecessary communication overhead when logically unrelated data
items that happen to reside in the same page are referenced repeatedly by
multiple nodes."  Object-granularity coherence cannot exhibit this: the
coherence unit is the problem-defined object.
"""

import pytest

from benchmarks.conftest import once
from repro.bench.ablations import false_sharing

NODES = 4
ROUNDS = 50


@pytest.fixture(scope="module")
def rows():
    return false_sharing(nodes=NODES, rounds=ROUNDS)


def by_layout(rows):
    return {row.layout: row for row in rows}


def test_regenerates(benchmark, rows):
    assert len(once(benchmark, lambda: rows)) == 3


def test_packed_counters_ping_pong(benchmark, rows):
    table = by_layout(once(benchmark, lambda: rows))
    packed = table["DSM: counters packed in one page"]
    aligned = table["DSM: counters page-aligned"]
    # Packing unrelated counters into one page amplifies traffic by well
    # over an order of magnitude.
    assert packed.network_messages > 10 * max(1, aligned.network_messages)
    assert packed.page_transfers > 10 * max(1, aligned.page_transfers)


def test_aligned_counters_quiet_after_first_touch(benchmark, rows):
    table = by_layout(once(benchmark, lambda: rows))
    aligned = table["DSM: counters page-aligned"]
    # First-touch faults only: bounded by one transaction per node.
    assert aligned.page_transfers <= NODES


def test_amber_objects_never_communicate(benchmark, rows):
    """Per-node objects updated by local threads generate no steady-state
    traffic at all (the few messages are thread-startup migrations)."""
    table = by_layout(once(benchmark, lambda: rows))
    amber = table["Amber: one object per node"]
    assert amber.page_transfers == 0
    assert amber.messages_per_update < 0.1


def test_object_coherence_beats_page_coherence_here(benchmark, rows):
    table = by_layout(once(benchmark, lambda: rows))
    packed = table["DSM: counters packed in one page"]
    amber = table["Amber: one object per node"]
    assert packed.messages_per_update > 20 * amber.messages_per_update
