"""Ablation A2: a shared lock contended from four nodes (section 4.1).

The paper: "References to a shared lock variable can cause a data-shipping
system to thrash by repeatedly shuttling the page containing the lock
variable between the nodes which are referencing it.  Recent versions of
Ivy have handled this problem by deviating from the data-shipping model
and accessing shared lock variables with remote procedure calls."

Measured claims: the DSM test-and-set lock ping-pongs its page (the
hottest page moves on the order of once per critical section) and puts
far more traffic on the wire than the Amber lock object; the RPC escape
hatch fixes the thrash at the price of leaving the data-shipping model —
and still doesn't beat the Amber object.
"""

import pytest

from benchmarks.conftest import once
from repro.bench.ablations import lock_thrash

ROUNDS = 25
NODES = 4


@pytest.fixture(scope="module")
def rows():
    return lock_thrash(nodes=NODES, rounds=ROUNDS)


def by_system(rows):
    return {row.system: row for row in rows}


def test_regenerates(benchmark, rows):
    got = once(benchmark, lambda: rows)
    assert len(got) == 3


def test_tas_page_thrashes(benchmark, rows):
    table = by_system(once(benchmark, lambda: rows))
    tas = table["DSM test-and-set page"]
    total_sections = NODES * ROUNDS
    # The lock page shuttles at least once per critical section on
    # average — the definition of thrash.
    assert tas.hottest_page_transfers >= total_sections

    # The Amber lock never moves anything.
    amber = table["Amber lock object"]
    assert amber.hottest_page_transfers == 0


def test_tas_floods_network_relative_to_amber(benchmark, rows):
    table = by_system(once(benchmark, lambda: rows))
    tas = table["DSM test-and-set page"]
    amber = table["Amber lock object"]
    assert tas.network_messages > 2 * amber.network_messages


def test_rpc_escape_hatch_cures_thrash(benchmark, rows):
    table = by_system(once(benchmark, lambda: rows))
    rpc = table["DSM lock via RPC (recent Ivy)"]
    tas = table["DSM test-and-set page"]
    # RPC mode stops the lock page from shuttling...
    assert rpc.hottest_page_transfers < tas.hottest_page_transfers / 1.5
    # ...and burns much less CPU than spinning.
    assert rpc.cpu_busy_us < tas.cpu_busy_us


def test_amber_lock_is_predictable_round_trips(benchmark, rows):
    """Amber's per-critical-section cost is a fixed number of thread
    round trips — close to the Table 1 remote invoke/return pair."""
    table = by_system(once(benchmark, lambda: rows))
    amber = table["Amber lock object"]
    # acquire + release ~= 2 remote invocations ~= 16.6 ms worst case;
    # contention parks waiters at the lock, so the average is below that.
    assert amber.us_per_critical_section < 17_000
