"""Ablation A1: function shipping (Amber) vs data shipping (Ivy) on SOR.

The paper's section 4 claims, measured on a common cost model:

* on one node the two are equivalent (no network on either side);
* across nodes Amber wins, and the gap grows with node count;
* Ivy pays multiple page faults per edge where Amber pays one
  invocation (section 4.2's "multiple page faults unless the process is
  explicitly moved").
"""

import pytest

from benchmarks.conftest import once
from repro.bench.ablations import amber_vs_ivy_sor

ITERATIONS = 8


@pytest.fixture(scope="module")
def rows():
    return amber_vs_ivy_sor(iterations=ITERATIONS)


def test_comparison_regenerates(benchmark, rows):
    got = once(benchmark, lambda: rows)
    assert len(got) == 4


def test_equivalent_on_single_node(benchmark, rows):
    got = once(benchmark, lambda: rows)
    single = got[0]
    assert single.label == "1Nx4P"
    assert single.amber_speedup == pytest.approx(single.ivy_speedup,
                                                 rel=0.05)
    assert single.ivy_page_transfers == 0


def test_amber_wins_across_nodes(benchmark, rows):
    got = once(benchmark, lambda: rows)
    for row in got[1:]:
        assert row.amber_speedup > row.ivy_speedup, row.label


def test_gap_grows_with_nodes(benchmark, rows):
    got = once(benchmark, lambda: rows)
    gaps = [row.amber_speedup / row.ivy_speedup for row in got[1:]]
    assert gaps == sorted(gaps)
    assert gaps[-1] > 1.3   # a clear win at 8 nodes


def test_ivy_needs_many_more_messages(benchmark, rows):
    got = once(benchmark, lambda: rows)
    eight = got[-1]
    assert eight.ivy_messages > 3 * eight.amber_messages


def test_edges_cost_multiple_faults(benchmark, rows):
    """A 842-column float32 row spans four 1 KiB pages: each ghost-row
    fetch costs ~4 faults where Amber pays one invocation."""
    got = once(benchmark, lambda: rows)
    eight = got[-1]
    # 32 processes x 2 ghost rows x 2 colors x iterations, ~4 pages each:
    # the fault count dwarfs the number of logical edge exchanges.
    logical_edges = 32 * 2 * 2 * ITERATIONS
    assert eight.ivy_faults > logical_edges
