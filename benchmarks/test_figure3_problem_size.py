"""Figure 3: effect of varying the SOR problem size at 4Nx4P.

Shape: speedup rises steeply with grid size, then flattens below the
16-CPU ideal; the paper's 122x842 grid ("X") lands near its Figure 2
value for 4Nx4P.
"""

import pytest

from benchmarks.conftest import once
from repro.bench.figure3 import main as figure3_main
from repro.bench.figure3 import run_figure3

ITERATIONS = 10


@pytest.fixture(scope="module")
def figure3_points():
    return run_figure3(iterations=ITERATIONS)


def test_figure3_regenerates(benchmark):
    points = once(benchmark, lambda: run_figure3(iterations=ITERATIONS))
    assert len(points) == 6
    print()
    print(figure3_main(iterations=ITERATIONS))


def test_speedup_monotone_in_problem_size(figure3_points, benchmark):
    points = once(benchmark, lambda: figure3_points)
    speedups = [p.speedup for p in points]
    assert speedups == sorted(speedups)


def test_small_grids_communication_bound(figure3_points, benchmark):
    """"for sufficiently small grids [communication] will dominate
    computation and limit speedup"."""
    points = once(benchmark, lambda: figure3_points)
    assert points[0].speedup < 0.6 * 16


def test_large_grids_approach_ideal(figure3_points, benchmark):
    points = once(benchmark, lambda: figure3_points)
    assert points[-1].speedup > 0.85 * 16


def test_curve_flattens(figure3_points, benchmark):
    """The marginal gain from quadrupling the problem shrinks."""
    points = once(benchmark, lambda: figure3_points)
    first_jump = points[1].speedup - points[0].speedup
    last_jump = points[-1].speedup - points[-2].speedup
    assert last_jump < first_jump


def test_paper_grid_is_marked(figure3_points, benchmark):
    points = once(benchmark, lambda: figure3_points)
    marked = [p for p in points if p.is_paper_grid]
    assert len(marked) == 1
    assert marked[0].points == 122 * 842
