"""Ablation A6: immutable replication (section 2.3).

"Amber also supports replication of readonly objects to reduce
unnecessary communication overhead."  A remote reader of a mutable table
migrates for every lookup; marking the table immutable replaces the whole
stream with a single replica fetch.
"""

import pytest

from benchmarks.conftest import once
from repro.bench.ablations import immutable_replication

READS = 40


@pytest.fixture(scope="module")
def rows():
    return immutable_replication(reads=READS)


def test_regenerates(benchmark, rows):
    assert len(once(benchmark, lambda: rows)) == 2


def test_mutable_pays_per_read(benchmark, rows):
    got = once(benchmark, lambda: rows)
    mutable = got[0]
    # Every lookup is a migration round trip: 2 one-way transfers each,
    # plus the initial hop of the reader thread.
    assert mutable.thread_migrations >= 2 * READS


def test_immutable_pays_once(benchmark, rows):
    got = once(benchmark, lambda: rows)
    immutable = got[1]
    # One replica fetch; the reader thread itself migrates only to reach
    # its own object.
    assert immutable.thread_migrations <= 4
    assert immutable.network_messages <= 6


def test_replication_is_order_of_magnitude_faster(benchmark, rows):
    got = once(benchmark, lambda: rows)
    mutable, immutable = got
    assert mutable.elapsed_us > 10 * immutable.elapsed_us
