# Convenience targets for the Amber reproduction.

.PHONY: install test bench perf artifacts examples lint analyze \
	amber-check check chaos flow elide clean

install:
	pip install -e . || python setup.py develop

test:
	python -m pytest tests/ -q

lint:
	PYTHONPATH=src python -m repro lint src/repro/apps examples

analyze:
	PYTHONPATH=src python -m repro analyze --fast

amber-check:
	PYTHONPATH=src python -m repro check --fast

# AmberFlow: static object-flow analysis + placement-hint
# cross-validation against simulator runs (docs/ANALYSIS.md).
flow:
	PYTHONPATH=src python -m repro flow --fast \
		--expect benchmarks/baseline/FLOW_expected.json

# AmberChaos: seeded live-runtime chaos scenario suite (docs/CHAOS.md).
chaos:
	for seed in 0 1 2; do \
		PYTHONPATH=src python -m repro chaos --fast --seed $$seed || exit 1; \
	done

# AmberElide: escape/confinement analysis + verified sync-elision
# fast paths (docs/ANALYSIS.md).  Add --verify for the full dynamic
# soundness suite (AmberCheck, bit-identity, perf trajectory).
elide:
	PYTHONPATH=src python -m repro elide --fast

# The full static + dynamic + model-checking gauntlet.
check: lint flow elide analyze amber-check

# The paper-figure benchmark suite (simulated results asserted against
# the paper's shape; pytest-benchmark records regeneration cost).
bench:
	PYTHONPATH=src python -m pytest benchmarks/ -q

# AmberPerf: wall-clock benchmark suite + hot-loop self-profile
# (see docs/PERF.md).  Compare against the committed baseline with
#   PYTHONPATH=src python -m repro perf --fast \
#     --baseline benchmarks/baseline/BENCH_baseline.json
perf:
	PYTHONPATH=src python -m repro perf --fast
	PYTHONPATH=src python -m repro perf --profile sor --fast

artifacts:
	python -m repro all

examples:
	python examples/quickstart.py
	python examples/sor_speedup.py
	python examples/distributed_philosophers.py
	python examples/custom_scheduler.py
	python examples/mobile_directory.py
	python examples/parallel_queens.py
	python examples/replicated_matmul.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
